//! AST → bytecode compiler.
//!
//! The compiler walks a function body exactly once, emitting ops in the
//! tree-walker's evaluation order with an [`Op::Step`] wherever
//! `eval_expr` / `exec_stmt` would have charged a step. Anything outside
//! the supported subset aborts the whole function with a [`Bail`] — the
//! caller memoizes the bail and keeps tree-walking.
//!
//! Supported subset, deliberately small and provable: literal / template
//! / identifier / `this` reads, array and (static-key) object literals,
//! unary / binary / logical / conditional / sequence expressions,
//! identifier and member assignment (compound only on identifiers),
//! `++`/`--` on identifiers, calls / method calls / `new` without spread
//! or optional chaining, `if` / `while` / `do-while` / C-style `for` /
//! blocks / unlabeled `break`-`continue` / `return` / `throw` with
//! identifier-pattern declarations. Everything else bails.

use std::collections::HashMap;

use aji_ast::ast::{
    AssignOp, AssignTarget, Expr, ExprKind, ExprOrSpread, ForInit, FuncBody, Function, MemberProp,
    PatternKind, Property, Stmt, StmtKind, UnaryOp, UpdateOp, VarDecl, VarKind,
};
use aji_ast::Span;

use crate::{Bail, Chunk, Const, Op};

/// Compiles a function body to a [`Chunk`], or explains why it cannot be
/// compiled. The result is independent of any runtime state — one chunk
/// per function definition, shared by every closure over it.
pub fn compile_function(def: &Function) -> Result<Chunk, Bail> {
    let mut c = Compiler::default();
    c.build_frame(def)?;
    match &def.body {
        FuncBody::Block(stmts) => {
            for s in stmts {
                c.stmt(s)?;
            }
            c.emit(Op::ReturnUndef);
        }
        FuncBody::Expr(e) => {
            // Arrow expression body: the expression's value is the return
            // value; no statement step is charged.
            c.expr(e)?;
            c.emit(Op::Return);
        }
    }
    let mut chunk = c.finish()?;
    chunk.func_name = def.name.clone();
    chunk.func_span = def.span;
    Ok(chunk)
}

/// Dedup key for the constant pool (`f64` keyed by bit pattern so `NaN`
/// and `-0.0` intern correctly).
#[derive(PartialEq, Eq, Hash)]
enum ConstKey {
    Undefined,
    Null,
    Bool(bool),
    Num(u64),
    Str(String),
}

/// An enclosing compiled loop: `continue` jumps to `head`, `break` sites
/// are patched to the loop end once it is known.
struct LoopCtx {
    head: u32,
    breaks: Vec<usize>,
}

#[derive(Default)]
struct Compiler {
    ops: Vec<Op>,
    consts: Vec<Const>,
    const_idx: HashMap<ConstKey, u16>,
    names: Vec<String>,
    name_idx: HashMap<String, u16>,
    spans: Vec<Span>,
    templates: Vec<Vec<String>>,
    entry: Vec<(u16, u16)>,
    /// Lexical slot scopes, innermost last. `scopes[0]` is the function
    /// scope (params + hoisted `var`s + body-top-level `let`/`const`).
    scopes: Vec<HashMap<String, u16>>,
    n_slots: u32,
    n_loops: u32,
    n_ics: u32,
    loops: Vec<LoopCtx>,
}

/// Identifier reads the tree-walker resolves before consulting the scope
/// chain (`eval_ident`'s special cases). Reads of these names compile to
/// constants / dedicated ops even when shadowed by a local — exactly the
/// tree-walker's (bug-compatible) behaviour. Writes are *not* special.
fn special_ident(name: &str) -> bool {
    matches!(
        name,
        "undefined" | "NaN" | "Infinity" | "globalThis" | "global"
    )
}

impl Compiler {
    // ---- pools ---------------------------------------------------------

    fn emit(&mut self, op: Op) -> usize {
        self.ops.push(op);
        self.ops.len() - 1
    }

    fn here(&self) -> u32 {
        self.ops.len() as u32
    }

    fn patch(&mut self, at: usize, target: u32) {
        match &mut self.ops[at] {
            Op::Jump(t)
            | Op::JumpIfFalse(t)
            | Op::JumpTruthyKeep(t)
            | Op::JumpFalsyKeep(t)
            | Op::JumpNotNullishKeep(t) => *t = target,
            Op::TypeOfName { end, .. } => *end = target,
            other => unreachable!("patching non-jump op {other:?}"),
        }
    }

    fn konst(&mut self, c: Const) -> Result<u16, Bail> {
        let key = match &c {
            Const::Undefined => ConstKey::Undefined,
            Const::Null => ConstKey::Null,
            Const::Bool(b) => ConstKey::Bool(*b),
            Const::Num(n) => ConstKey::Num(n.to_bits()),
            Const::Str(s) => ConstKey::Str(s.clone()),
        };
        if let Some(&i) = self.const_idx.get(&key) {
            return Ok(i);
        }
        let i = u16::try_from(self.consts.len()).map_err(|_| Bail("constant pool overflow"))?;
        self.consts.push(c);
        self.const_idx.insert(key, i);
        Ok(i)
    }

    fn push_const(&mut self, c: Const) -> Result<(), Bail> {
        let i = self.konst(c)?;
        self.emit(Op::Const(i));
        Ok(())
    }

    fn name(&mut self, s: &str) -> Result<u16, Bail> {
        if let Some(&i) = self.name_idx.get(s) {
            return Ok(i);
        }
        let i = u16::try_from(self.names.len()).map_err(|_| Bail("name pool overflow"))?;
        self.names.push(s.to_string());
        self.name_idx.insert(s.to_string(), i);
        Ok(i)
    }

    fn span(&mut self, sp: Span) -> Result<u16, Bail> {
        let i = u16::try_from(self.spans.len()).map_err(|_| Bail("span pool overflow"))?;
        self.spans.push(sp);
        Ok(i)
    }

    fn fresh_slot(&mut self) -> Result<u16, Bail> {
        let i = u16::try_from(self.n_slots).map_err(|_| Bail("slot overflow"))?;
        self.n_slots += 1;
        Ok(i)
    }

    fn fresh_loop(&mut self) -> Result<u16, Bail> {
        let i = u16::try_from(self.n_loops).map_err(|_| Bail("loop counter overflow"))?;
        self.n_loops += 1;
        Ok(i)
    }

    fn fresh_ic(&mut self) -> Result<u16, Bail> {
        let i = u16::try_from(self.n_ics).map_err(|_| Bail("inline cache overflow"))?;
        self.n_ics += 1;
        Ok(i)
    }

    /// Resolves a name to a frame slot, innermost lexical scope first.
    fn resolve(&self, name: &str) -> Option<u16> {
        self.scopes
            .iter()
            .rev()
            .find_map(|m| m.get(name).copied())
    }

    // ---- frame layout --------------------------------------------------

    /// Builds the function-scope slot map: identifier parameters (seeded
    /// from the prologue-populated scope at frame entry), hoisted `var`
    /// names, and body-top-level `let`/`const`. Mirrors the tree-walker's
    /// `hoist` pass — a `let` colliding with a parameter resets it to
    /// `undefined`, so its entry seed is dropped.
    fn build_frame(&mut self, def: &Function) -> Result<(), Bail> {
        let mut fscope: HashMap<String, u16> = HashMap::new();

        // Identifier parameters read their prologue-bound value at frame
        // entry. Duplicate names share a slot; `get_own` sees the last
        // binding, matching the tree-walker's scope state. Destructured
        // or defaulted inner names stay scope-resolved (no slot).
        for p in &def.params {
            if let PatternKind::Ident(n) = &p.pat.kind {
                if !fscope.contains_key(n) {
                    let slot = self.fresh_slot()?;
                    let name = self.name(n)?;
                    fscope.insert(n.clone(), slot);
                    self.entry.push((slot, name));
                }
            }
        }

        // Hoisted `var` names start `undefined` unless the prologue bound
        // them (parameter shadowing) — the entry seed handles both, since
        // `get_own` returns `None` for unbound names.
        if let FuncBody::Block(stmts) = &def.body {
            let mut vars = Vec::new();
            collect_vars(stmts, &mut vars)?;
            for n in vars {
                if let std::collections::hash_map::Entry::Vacant(e) = fscope.entry(n) {
                    let slot = self.fresh_slot()?;
                    let name = self.name(e.key())?;
                    e.insert(slot);
                    self.entry.push((slot, name));
                }
            }

            // Body-top-level `let`/`const`: hoisted to `undefined` before
            // any statement runs, clobbering a same-named parameter.
            for s in stmts {
                if let StmtKind::VarDecl(d) = &s.kind {
                    if d.kind != VarKind::Var {
                        for decl in &d.decls {
                            let PatternKind::Ident(n) = &decl.name.kind else {
                                return Err(Bail("destructuring declaration"));
                            };
                            if let Some(&slot) = fscope.get(n) {
                                self.entry.retain(|&(s, _)| s != slot);
                            } else {
                                let slot = self.fresh_slot()?;
                                fscope.insert(n.clone(), slot);
                            }
                        }
                    }
                }
            }
        }

        self.scopes.push(fscope);
        Ok(())
    }

    fn finish(self) -> Result<Chunk, Bail> {
        u32::try_from(self.ops.len()).map_err(|_| Bail("op overflow"))?;
        Ok(Chunk {
            ops: fuse(self.ops),
            consts: self.consts,
            names: self.names,
            spans: self.spans,
            templates: self.templates,
            entry: self.entry,
            n_slots: self.n_slots as u16,
            n_loops: self.n_loops as u16,
            n_ics: self.n_ics as u16,
            // Attribution is stamped by `compile_function` once the whole
            // chunk is known-good.
            func_name: None,
            func_span: Span::dummy(aji_ast::FileId(0)),
        })
    }

    // ---- statements ----------------------------------------------------

    fn stmt(&mut self, s: &Stmt) -> Result<(), Bail> {
        // `exec_stmt` charges one step on entry, before dispatch.
        self.emit(Op::Step);
        match &s.kind {
            StmtKind::Expr(e) => {
                self.expr(e)?;
                self.emit(Op::Pop);
            }
            StmtKind::VarDecl(d) => self.var_decl(d)?,
            StmtKind::FuncDecl(_) => return Err(Bail("function declaration")),
            StmtKind::ClassDecl(_) => return Err(Bail("class declaration")),
            StmtKind::Return(e) => {
                match e {
                    Some(e) => {
                        self.expr(e)?;
                        self.emit(Op::Return);
                    }
                    None => {
                        self.emit(Op::ReturnUndef);
                    }
                };
            }
            StmtKind::If { test, cons, alt } => {
                self.expr(test)?;
                let j_alt = self.emit(Op::JumpIfFalse(0));
                self.stmt(cons)?;
                match alt {
                    Some(alt) => {
                        let j_end = self.emit(Op::Jump(0));
                        let at = self.here();
                        self.patch(j_alt, at);
                        self.stmt(alt)?;
                        let at = self.here();
                        self.patch(j_end, at);
                    }
                    None => {
                        let at = self.here();
                        self.patch(j_alt, at);
                    }
                }
            }
            StmtKind::While { test, body } => {
                let k = self.fresh_loop()?;
                self.emit(Op::LoopEnter(k));
                let head = self.here();
                self.loops.push(LoopCtx {
                    head,
                    breaks: Vec::new(),
                });
                self.emit(Op::IterCheck(k));
                self.expr(test)?;
                let j_end = self.emit(Op::JumpIfFalse(0));
                self.stmt(body)?;
                self.emit(Op::Jump(head));
                self.close_loop(&[j_end]);
            }
            StmtKind::DoWhile { body, test } => {
                let k = self.fresh_loop()?;
                self.emit(Op::LoopEnter(k));
                // First iteration skips the test (but still counts).
                self.emit(Op::IterCheck(k));
                let j_body = self.emit(Op::Jump(0));
                let head = self.here();
                self.loops.push(LoopCtx {
                    head,
                    breaks: Vec::new(),
                });
                self.emit(Op::IterCheck(k));
                self.expr(test)?;
                let j_end = self.emit(Op::JumpIfFalse(0));
                let at = self.here();
                self.patch(j_body, at);
                self.stmt(body)?;
                self.emit(Op::Jump(head));
                self.close_loop(&[j_end]);
            }
            StmtKind::For {
                init,
                test,
                update,
                body,
            } => self.for_stmt(init.as_ref(), test.as_ref(), update.as_ref(), body)?,
            StmtKind::Block(stmts) => self.block(stmts)?,
            StmtKind::Empty | StmtKind::Debugger => {}
            StmtKind::Break(None) => {
                // Inside a compiled loop this jumps to its end; at body
                // level the tree-walker's `Flow::Break` unwinds the whole
                // function body, returning `undefined`.
                match self.loops.last_mut() {
                    Some(_) => {
                        let j = self.emit(Op::Jump(0));
                        self.loops.last_mut().unwrap().breaks.push(j);
                    }
                    None => {
                        self.emit(Op::ReturnUndef);
                    }
                }
            }
            StmtKind::Continue(None) => match self.loops.last() {
                Some(ctx) => {
                    let head = ctx.head;
                    self.emit(Op::Jump(head));
                }
                None => {
                    self.emit(Op::ReturnUndef);
                }
            },
            StmtKind::Break(Some(_)) | StmtKind::Continue(Some(_)) => {
                return Err(Bail("labeled break/continue"))
            }
            StmtKind::Throw(e) => {
                self.expr(e)?;
                self.emit(Op::Throw);
            }
            StmtKind::ForIn { .. } => return Err(Bail("for-in")),
            StmtKind::ForOf { .. } => return Err(Bail("for-of")),
            StmtKind::Labeled { .. } => return Err(Bail("labeled statement")),
            StmtKind::Switch { .. } => return Err(Bail("switch")),
            StmtKind::Try { .. } => return Err(Bail("try")),
        }
        Ok(())
    }

    /// Patches pending `break` jumps and the given end-jumps to the
    /// current position, popping the loop context.
    fn close_loop(&mut self, ends: &[usize]) {
        let end = self.here();
        let ctx = self.loops.pop().expect("loop context");
        for j in ctx.breaks.into_iter().chain(ends.iter().copied()) {
            self.patch(j, end);
        }
    }

    fn for_stmt(
        &mut self,
        init: Option<&ForInit>,
        test: Option<&Expr>,
        update: Option<&Expr>,
        body: &Stmt,
    ) -> Result<(), Bail> {
        // The tree-walker wraps the whole loop in a block scope holding
        // the `let` names, declared `undefined` before the initializer
        // runs (without charging a declaration-statement step).
        let mut map: HashMap<String, u16> = HashMap::new();
        let mut undefs = Vec::new();
        if let Some(ForInit::VarDecl(d)) = init {
            if d.kind != VarKind::Var {
                for decl in &d.decls {
                    let PatternKind::Ident(n) = &decl.name.kind else {
                        return Err(Bail("destructuring declaration"));
                    };
                    if !map.contains_key(n) {
                        let slot = self.fresh_slot()?;
                        map.insert(n.clone(), slot);
                        undefs.push(slot);
                    }
                }
            }
        }
        self.scopes.push(map);
        for slot in undefs {
            self.emit(Op::LocalUndef(slot));
        }
        match init {
            Some(ForInit::VarDecl(d)) => self.var_decl(d)?,
            Some(ForInit::Expr(e)) => {
                self.expr(e)?;
                self.emit(Op::Pop);
            }
            None => {}
        }

        let k = self.fresh_loop()?;
        self.emit(Op::LoopEnter(k));
        // First iteration checks the budget then skips the update.
        self.emit(Op::IterCheck(k));
        let j_first = self.emit(Op::Jump(0));
        let head = self.here();
        self.loops.push(LoopCtx {
            head,
            breaks: Vec::new(),
        });
        self.emit(Op::IterCheck(k));
        if let Some(u) = update {
            self.expr(u)?;
            self.emit(Op::Pop);
        }
        let at = self.here();
        self.patch(j_first, at);
        let mut ends = Vec::new();
        if let Some(t) = test {
            self.expr(t)?;
            ends.push(self.emit(Op::JumpIfFalse(0)));
        }
        self.stmt(body)?;
        self.emit(Op::Jump(head));
        self.close_loop(&ends);
        self.scopes.pop();
        Ok(())
    }

    fn block(&mut self, stmts: &[Stmt]) -> Result<(), Bail> {
        // Mirror of the tree-walker's block hoist: `let`/`const` (and the
        // bailing class declarations) reset to `undefined` at block entry.
        let mut map: HashMap<String, u16> = HashMap::new();
        let mut undefs = Vec::new();
        for s in stmts {
            if let StmtKind::VarDecl(d) = &s.kind {
                if d.kind != VarKind::Var {
                    for decl in &d.decls {
                        let PatternKind::Ident(n) = &decl.name.kind else {
                            return Err(Bail("destructuring declaration"));
                        };
                        if !map.contains_key(n) {
                            let slot = self.fresh_slot()?;
                            map.insert(n.clone(), slot);
                            undefs.push(slot);
                        }
                    }
                }
            }
        }
        self.scopes.push(map);
        for slot in undefs {
            self.emit(Op::LocalUndef(slot));
        }
        for s in stmts {
            self.stmt(s)?;
        }
        self.scopes.pop();
        Ok(())
    }

    /// A declaration list. Charged steps come only from initializer
    /// expressions — `exec_var_decl` itself does not step.
    fn var_decl(&mut self, d: &VarDecl) -> Result<(), Bail> {
        for decl in &d.decls {
            let PatternKind::Ident(n) = &decl.name.kind else {
                return Err(Bail("destructuring declaration"));
            };
            let Some(slot) = self.resolve(n) else {
                // A `let` directly as an `if`/loop arm (no enclosing
                // block) declares into the surrounding runtime scope;
                // out of the compiled subset.
                return Err(Bail("declaration outside tracked scope"));
            };
            match &decl.init {
                Some(init) => {
                    self.expr(init)?;
                    self.emit(Op::StoreLocal(slot));
                    self.emit(Op::Pop);
                }
                None => {
                    if d.kind != VarKind::Var {
                        // `let x;` re-declares to `undefined` even when
                        // the slot already holds a value (block re-entry).
                        self.emit(Op::LocalUndef(slot));
                    }
                    // `var x;` with the name already hoisted: no effect.
                }
            }
        }
        Ok(())
    }

    // ---- expressions ---------------------------------------------------

    fn expr(&mut self, e: &Expr) -> Result<(), Bail> {
        // `eval_expr` charges one step on entry, before dispatch —
        // including for `Paren`, whose inner expression steps again.
        self.emit(Op::Step);
        match &e.kind {
            ExprKind::Num(n) => self.push_const(Const::Num(*n))?,
            ExprKind::Str(s) => self.push_const(Const::Str(s.clone()))?,
            ExprKind::Bool(b) => self.push_const(Const::Bool(*b))?,
            ExprKind::Null => self.push_const(Const::Null)?,
            ExprKind::Template { quasis, exprs } => {
                for x in exprs {
                    self.expr(x)?;
                    self.emit(Op::ToStr);
                }
                let tpl = u16::try_from(self.templates.len())
                    .map_err(|_| Bail("template pool overflow"))?;
                self.templates.push(quasis.clone());
                let n = u16::try_from(exprs.len()).map_err(|_| Bail("template arity"))?;
                self.emit(Op::Template { tpl, exprs: n });
            }
            ExprKind::Regex { .. } => return Err(Bail("regex literal")),
            ExprKind::Ident(name) => self.ident_read(name)?,
            ExprKind::This => {
                self.emit(Op::LoadThis);
            }
            ExprKind::Array(elems) => {
                for el in elems {
                    match el {
                        None => self.push_const(Const::Undefined)?,
                        Some(ExprOrSpread { spread: false, expr }) => self.expr(expr)?,
                        Some(ExprOrSpread { spread: true, .. }) => {
                            return Err(Bail("array spread"))
                        }
                    }
                }
                let n = u16::try_from(elems.len()).map_err(|_| Bail("array arity"))?;
                let span = self.span(e.span)?;
                self.emit(Op::MakeArray { n, span });
            }
            ExprKind::Object(props) => {
                let span = self.span(e.span)?;
                self.emit(Op::MakeObject { span });
                for p in props {
                    match p {
                        Property::KeyValue { key, value } => {
                            let Some(name) = key.static_name() else {
                                return Err(Bail("computed object key"));
                            };
                            self.expr(value)?;
                            let name = self.name(&name)?;
                            self.emit(Op::SetLitProp { name });
                        }
                        Property::Method { .. } => return Err(Bail("object method")),
                        Property::Spread(_) => return Err(Bail("object spread")),
                    }
                }
            }
            ExprKind::Function(_) | ExprKind::Arrow(_) => return Err(Bail("nested closure")),
            ExprKind::Class(_) => return Err(Bail("class expression")),
            ExprKind::Unary { op, expr } => self.unary(*op, expr)?,
            ExprKind::Update { op, prefix, expr } => {
                let target = expr.unparen();
                let ExprKind::Ident(name) = &target.kind else {
                    return Err(Bail("update of non-identifier"));
                };
                // Old value, read exactly like the tree-walker (special
                // identifiers included), then store-and-select.
                self.expr(expr)?;
                let dec = *op == UpdateOp::Dec;
                match self.resolve(name) {
                    Some(slot) => {
                        self.emit(Op::UpdateLocal {
                            slot,
                            dec,
                            prefix: *prefix,
                        });
                    }
                    None => {
                        let name = self.name(name)?;
                        self.emit(Op::UpdateName {
                            name,
                            dec,
                            prefix: *prefix,
                        });
                    }
                }
            }
            ExprKind::Binary { op, left, right } => {
                self.expr(left)?;
                self.expr(right)?;
                self.emit(Op::Binary(*op));
            }
            ExprKind::Logical { op, left, right } => {
                use aji_ast::ast::LogicalOp;
                self.expr(left)?;
                let j = self.emit(match op {
                    LogicalOp::And => Op::JumpFalsyKeep(0),
                    LogicalOp::Or => Op::JumpTruthyKeep(0),
                    LogicalOp::Nullish => Op::JumpNotNullishKeep(0),
                });
                self.emit(Op::Pop);
                self.expr(right)?;
                let at = self.here();
                self.patch(j, at);
            }
            ExprKind::Assign { op, target, value } => self.assign(*op, target, value)?,
            ExprKind::Cond { test, cons, alt } => {
                self.expr(test)?;
                let j_alt = self.emit(Op::JumpIfFalse(0));
                self.expr(cons)?;
                let j_end = self.emit(Op::Jump(0));
                let at = self.here();
                self.patch(j_alt, at);
                self.expr(alt)?;
                let at = self.here();
                self.patch(j_end, at);
            }
            ExprKind::Call {
                callee,
                args,
                optional,
            } => self.call(e, callee, args, *optional)?,
            ExprKind::New { callee, args } => {
                self.expr(callee)?;
                let argc = self.args(args)?;
                let span = self.span(e.span)?;
                self.emit(Op::New { argc, span });
            }
            ExprKind::Member {
                obj,
                prop,
                optional,
            } => {
                if *optional {
                    return Err(Bail("optional member"));
                }
                self.expr(obj)?;
                match prop {
                    MemberProp::Static(name) => {
                        let name = self.name(name)?;
                        let ic = self.fresh_ic()?;
                        self.emit(Op::GetProp { name, ic });
                    }
                    MemberProp::Computed(k) => {
                        self.expr(k)?;
                        let span = self.span(e.span)?;
                        self.emit(Op::GetPropDyn { span });
                    }
                }
            }
            ExprKind::Seq(exprs) => {
                if exprs.is_empty() {
                    self.push_const(Const::Undefined)?;
                } else {
                    for (i, x) in exprs.iter().enumerate() {
                        if i > 0 {
                            self.emit(Op::Pop);
                        }
                        self.expr(x)?;
                    }
                }
            }
            ExprKind::Paren(inner) => self.expr(inner)?,
        }
        Ok(())
    }

    /// Identifier read, mirroring `eval_ident`: special names first (even
    /// when shadowed), then the frame slot, else the scope chain.
    fn ident_read(&mut self, name: &str) -> Result<(), Bail> {
        match name {
            "undefined" => self.push_const(Const::Undefined)?,
            "NaN" => self.push_const(Const::Num(f64::NAN))?,
            "Infinity" => self.push_const(Const::Num(f64::INFINITY))?,
            "globalThis" | "global" => {
                self.emit(Op::LoadGlobal);
            }
            _ => match self.resolve(name) {
                Some(slot) => {
                    self.emit(Op::LoadLocal(slot));
                }
                None => {
                    let name = self.name(name)?;
                    self.emit(Op::LoadName(name));
                }
            },
        }
        Ok(())
    }

    /// Identifier write (peeks the stored value as the result). Special
    /// names are *not* special on the write path — `undefined = v` goes
    /// through the scope chain like any other name.
    fn ident_write(&mut self, name: &str) -> Result<(), Bail> {
        match self.resolve(name) {
            Some(slot) => {
                self.emit(Op::StoreLocal(slot));
            }
            None => {
                let name = self.name(name)?;
                self.emit(Op::StoreName(name));
            }
        }
        Ok(())
    }

    fn unary(&mut self, op: UnaryOp, operand: &Expr) -> Result<(), Bail> {
        match op {
            UnaryOp::TypeOf => {
                // `typeof unbound` is `"undefined"`, not a throw — the
                // tree-walker checks bindings before evaluating. Bound
                // names fall through to the normal (stepping) read.
                if let ExprKind::Ident(name) = &operand.unparen().kind {
                    if !special_ident(name) && self.resolve(name).is_none() {
                        let name = self.name(name)?;
                        let guard = self.emit(Op::TypeOfName { name, end: 0 });
                        self.expr(operand)?;
                        self.emit(Op::TypeOf);
                        let at = self.here();
                        self.patch(guard, at);
                        return Ok(());
                    }
                }
                self.expr(operand)?;
                self.emit(Op::TypeOf);
            }
            UnaryOp::Delete => return Err(Bail("delete")),
            UnaryOp::Neg | UnaryOp::Pos | UnaryOp::Not | UnaryOp::BitNot | UnaryOp::Void => {
                self.expr(operand)?;
                self.emit(Op::Unary(op));
            }
        }
        Ok(())
    }

    fn assign(&mut self, op: AssignOp, target: &AssignTarget, value: &Expr) -> Result<(), Bail> {
        if op == AssignOp::Assign {
            self.expr(value)?;
            return match target {
                AssignTarget::Ident { name, .. } => self.ident_write(name),
                AssignTarget::Member(m) => {
                    let ExprKind::Member {
                        obj,
                        prop,
                        optional,
                    } = &m.unparen().kind
                    else {
                        return Err(Bail("member target shape"));
                    };
                    if *optional {
                        return Err(Bail("optional member target"));
                    }
                    self.expr(obj)?;
                    match prop {
                        MemberProp::Static(name) => {
                            let name = self.name(name)?;
                            let ic = self.fresh_ic()?;
                            self.emit(Op::SetProp { name, ic });
                        }
                        MemberProp::Computed(k) => {
                            self.expr(k)?;
                            // Dynamic-write events locate the *target*
                            // expression (pre-unparen), not the whole
                            // assignment.
                            let span = self.span(m.span)?;
                            self.emit(Op::SetPropDyn { span });
                        }
                    }
                    Ok(())
                }
                AssignTarget::Pattern(_) => Err(Bail("destructuring assignment")),
            };
        }

        // Compound assignment: the tree-walker re-evaluates the target as
        // an expression (one step for the synthesized read) and only
        // supports identifier targets without re-evaluating side effects.
        let AssignTarget::Ident { name, .. } = target else {
            return Err(Bail("compound member assignment"));
        };
        self.emit(Op::Step);
        self.ident_read(name)?;
        match op {
            AssignOp::And | AssignOp::Or | AssignOp::Nullish => {
                let j = self.emit(match op {
                    AssignOp::And => Op::JumpFalsyKeep(0),
                    AssignOp::Or => Op::JumpTruthyKeep(0),
                    _ => Op::JumpNotNullishKeep(0),
                });
                self.emit(Op::Pop);
                self.expr(value)?;
                self.ident_write(name)?;
                let at = self.here();
                self.patch(j, at);
            }
            _ => {
                let Some(bin) = op.binary_op() else {
                    return Err(Bail("assignment operator"));
                };
                self.expr(value)?;
                self.emit(Op::Binary(bin));
                self.ident_write(name)?;
            }
        }
        Ok(())
    }

    fn args(&mut self, args: &[ExprOrSpread]) -> Result<u16, Bail> {
        for a in args {
            if a.spread {
                return Err(Bail("spread argument"));
            }
            self.expr(&a.expr)?;
        }
        u16::try_from(args.len()).map_err(|_| Bail("call arity"))
    }

    fn call(
        &mut self,
        e: &Expr,
        callee: &Expr,
        args: &[ExprOrSpread],
        optional: bool,
    ) -> Result<(), Bail> {
        if optional {
            return Err(Bail("optional call"));
        }
        let cu = callee.unparen();
        if let ExprKind::Ident(n) = &cu.kind {
            if n == "super" {
                return Err(Bail("super call"));
            }
            if n == "eval" {
                // Only direct calls to the *global* eval are special, but
                // that is a runtime question — bail on the name.
                return Err(Bail("eval call"));
            }
        }
        if let ExprKind::Member {
            obj,
            prop,
            optional: member_opt,
        } = &cu.kind
        {
            if *member_opt {
                return Err(Bail("optional method call"));
            }
            if matches!(&obj.unparen().kind, ExprKind::Ident(n) if n == "super") {
                return Err(Bail("super method call"));
            }
            // Method call: the callee's parens are skipped (`unparen`
            // before evaluation), the base keeps its own.
            self.expr(obj)?;
            match prop {
                MemberProp::Static(name) => {
                    let name = self.name(name)?;
                    let ic = self.fresh_ic()?;
                    self.emit(Op::GetMethod { name, ic });
                }
                MemberProp::Computed(k) => {
                    self.expr(k)?;
                    let span = self.span(cu.span)?;
                    self.emit(Op::GetMethodDyn { span });
                }
            }
            let argc = self.args(args)?;
            let span = self.span(e.span)?;
            self.emit(Op::CallMethod { argc, span });
            return Ok(());
        }

        // Plain call: the callee is evaluated as written, parens and all.
        self.expr(callee)?;
        let argc = self.args(args)?;
        let span = self.span(e.span)?;
        self.emit(Op::Call { argc, span });
        Ok(())
    }
}

// ---- peephole fusion ---------------------------------------------------

/// Merges common op pairs into superinstructions and remaps jump targets.
///
/// A pair is never fused when its *second* op is a jump target (the
/// jumper must be able to land on it alone). The *first* op of a pair may
/// be a target: a jumper landing on the fused op executes both halves in
/// order — exactly what it would have executed unfused. Fused step ops
/// keep the step charge *before* the payload, so budget trips happen at
/// the identical step index.
fn fuse(ops: Vec<Op>) -> Vec<Op> {
    use Op::*;
    // First pass pairs single ops; second pass extends the fused
    // `obj.prop` read (pairing against the *output* of pass one).
    let ops = fuse_pass(ops, |a, b| match (a, b) {
        (Step, LoadLocal(s)) => Some(StepLoadLocal(*s)),
        (Step, Const(k)) => Some(StepConst(*k)),
        (Step, LoadName(n)) => Some(StepLoadName(*n)),
        (Step, Step) => Some(StepStep),
        (StoreLocal(s), Pop) => Some(StoreLocalPop(*s)),
        (SetProp { name, ic }, Pop) => Some(SetPropPop {
            name: *name,
            ic: *ic,
        }),
        _ => None,
    });
    fuse_pass(ops, |a, b| match (a, b) {
        (StepLoadLocal(s), GetProp { name, ic }) => Some(StepLoadLocalGetProp {
            slot: *s,
            name: *name,
            ic: *ic,
        }),
        _ => None,
    })
}

/// One greedy left-to-right pairing pass: wherever `rule` maps two
/// adjacent ops to a superinstruction and the second op is not a jump
/// target, replace the pair, then remap every jump target into the new
/// index space.
fn fuse_pass(ops: Vec<Op>, rule: impl Fn(&Op, &Op) -> Option<Op>) -> Vec<Op> {
    use Op::*;
    let mut is_target = vec![false; ops.len() + 1];
    for op in &ops {
        match op {
            Jump(t) | JumpIfFalse(t) | JumpTruthyKeep(t) | JumpFalsyKeep(t)
            | JumpNotNullishKeep(t) => is_target[*t as usize] = true,
            TypeOfName { end, .. } => is_target[*end as usize] = true,
            _ => {}
        }
    }
    // map[old index] → new index; interior (consumed) ops map to their
    // fused op, which is never needed since they are never targets.
    let mut map = vec![0u32; ops.len() + 1];
    let mut out = Vec::with_capacity(ops.len());
    let mut i = 0;
    while i < ops.len() {
        map[i] = out.len() as u32;
        let fused = match ops.get(i + 1) {
            Some(next) if !is_target[i + 1] => rule(&ops[i], next),
            _ => None,
        };
        match fused {
            Some(f) => {
                map[i + 1] = out.len() as u32;
                out.push(f);
                i += 2;
            }
            None => {
                out.push(ops[i].clone());
                i += 1;
            }
        }
    }
    map[ops.len()] = out.len() as u32;
    for op in &mut out {
        match op {
            Jump(t) | JumpIfFalse(t) | JumpTruthyKeep(t) | JumpFalsyKeep(t)
            | JumpNotNullishKeep(t) => *t = map[*t as usize],
            TypeOfName { end, .. } => *end = map[*end as usize],
            _ => {}
        }
    }
    out
}

// ---- var hoisting ------------------------------------------------------

/// Collects `var` names exactly like the tree-walker's hoist pass (same
/// traversal, no descent into nested functions), bailing on patterns the
/// compiled subset cannot bind. Statement kinds the compiler rejects
/// anyway bail here eagerly.
fn collect_vars(stmts: &[Stmt], out: &mut Vec<String>) -> Result<(), Bail> {
    for s in stmts {
        collect_vars_stmt(s, out)?;
    }
    Ok(())
}

fn collect_vars_stmt(s: &Stmt, out: &mut Vec<String>) -> Result<(), Bail> {
    match &s.kind {
        StmtKind::VarDecl(d) if d.kind == VarKind::Var => {
            collect_decl(d, out)?;
        }
        StmtKind::VarDecl(_) => {}
        StmtKind::If { cons, alt, .. } => {
            collect_vars_stmt(cons, out)?;
            if let Some(alt) = alt {
                collect_vars_stmt(alt, out)?;
            }
        }
        StmtKind::While { body, .. } | StmtKind::DoWhile { body, .. } => {
            collect_vars_stmt(body, out)?;
        }
        StmtKind::For { init, body, .. } => {
            if let Some(ForInit::VarDecl(d)) = init {
                if d.kind == VarKind::Var {
                    collect_decl(d, out)?;
                }
            }
            collect_vars_stmt(body, out)?;
        }
        StmtKind::Block(stmts) => collect_vars(stmts, out)?,
        StmtKind::ForIn { .. } => return Err(Bail("for-in")),
        StmtKind::ForOf { .. } => return Err(Bail("for-of")),
        StmtKind::Labeled { .. } => return Err(Bail("labeled statement")),
        StmtKind::Switch { .. } => return Err(Bail("switch")),
        StmtKind::Try { .. } => return Err(Bail("try")),
        _ => {}
    }
    Ok(())
}

fn collect_decl(d: &VarDecl, out: &mut Vec<String>) -> Result<(), Bail> {
    for decl in &d.decls {
        match &decl.name.kind {
            PatternKind::Ident(n) => out.push(n.clone()),
            _ => return Err(Bail("destructuring declaration")),
        }
    }
    Ok(())
}
