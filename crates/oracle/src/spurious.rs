//! Root-cause triage for spurious call edges — the precision-side mirror
//! of [`crate::triage()`].
//!
//! A *spurious* edge is an extended-graph edge at a dynamically exercised
//! call site that the concrete run never took ([`crate::EdgeDiff`]). Every
//! one is a precision cost the analysis paid somewhere; this pass names
//! where. The classification is a fixed precedence chain (first match
//! wins), so two runs over the same project always agree:
//!
//! 1. the site is a static member call named `on`/`once`/`addListener`/
//!    `prependListener` and the spurious callee is one of the site's own
//!    function-literal arguments → [`SpuriousCause::ListenerModel`]: the
//!    name-based listener-registration model in `aji-pta`'s `method_model`
//!    attributed the future listener invocation to the registration site.
//!    When the receiver's `on` is itself a user function (a pure-JS
//!    emitter) *and* read hints recover the real dispatch loop, the model
//!    edge is pure over-approximation;
//! 2. the site is a static member call with a known stdlib **callback
//!    model** (`forEach`, `map`, `then`, …) and the callee is a function
//!    argument of the site → [`SpuriousCause::CallbackModel`]: the model
//!    fired but the run never invoked that callback (empty receiver,
//!    short-circuit, rejected promise path);
//! 3. the site is a `.call`/`.apply` dispatch →
//!    [`SpuriousCause::DotDispatch`]: the `f.call(..)` model invoked every
//!    function flowing into `f`, not just the one the run picked;
//! 4. the edge is **already in the baseline graph** →
//!    [`SpuriousCause::StaticImprecision`]: plain flow-insensitive
//!    over-approximation (allocation-site merging, polyvariance loss) —
//!    hints played no part;
//! 5. otherwise the edge exists only in the extended graph →
//!    [`SpuriousCause::HintImprecision`]: a hint token's allocation-site
//!    abstraction merged distinct runtime objects, so the hint landed the
//!    real edge *and* this phantom one.
//!
//! Causes 1–3 are deliberate unsoundness-vs-precision trades baked into
//! the static models; 4–5 are the abstraction's intrinsic cost. None is a
//! hint-application bug: a hint-application bug would show up as a
//! [`SpuriousCause::HintImprecision`] edge whose callee token cannot be
//! reached from any recorded hint, and the regression test in
//! `tests/oracle_pipeline.rs` pins the corpus histogram so any such drift
//! is caught.

use aji_ast::ast::{Expr, ExprKind, MemberProp};
use aji_ast::visit::{walk_expr, Visit};
use aji_ast::{Loc, SourceMap};
use aji_parser::ParsedProject;
use aji_pta::CallGraph;
use aji_support::Json;
use std::collections::{BTreeMap, BTreeSet};

/// Why the extended analysis kept a call edge the dynamic run
/// contradicted.
///
/// Variants are ordered by triage precedence (see the module docs); the
/// [`SpuriousCause::key`] strings are the stable names used in JSON
/// reports and histograms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SpuriousCause {
    /// The name-based `on`/`once`/`addListener` registration model
    /// attributed the listener's future invocation to the registration
    /// site.
    ListenerModel,
    /// A stdlib callback model (`forEach`, `then`, …) invoked a callback
    /// the run never called.
    CallbackModel,
    /// The `.call`/`.apply` dispatch model invoked a function the run
    /// never picked.
    DotDispatch,
    /// Baseline over-approximation: the edge needs no hints to appear.
    StaticImprecision,
    /// Extended-only over-approximation: a hint's allocation-site token
    /// merged distinct runtime objects.
    HintImprecision,
}

impl SpuriousCause {
    /// The stable report/histogram name of this cause.
    #[must_use]
    pub fn key(self) -> &'static str {
        match self {
            SpuriousCause::ListenerModel => "listener-model",
            SpuriousCause::CallbackModel => "callback-model",
            SpuriousCause::DotDispatch => "dot-dispatch",
            SpuriousCause::StaticImprecision => "static-imprecision",
            SpuriousCause::HintImprecision => "hint-imprecision",
        }
    }

    /// Every cause, in a fixed presentation order (histograms list all of
    /// them so reports from different projects align).
    #[must_use]
    pub fn all() -> [SpuriousCause; 5] {
        [
            SpuriousCause::ListenerModel,
            SpuriousCause::CallbackModel,
            SpuriousCause::DotDispatch,
            SpuriousCause::StaticImprecision,
            SpuriousCause::HintImprecision,
        ]
    }
}

/// One triaged spurious edge: an extended-graph edge at a dynamically
/// exercised site that the run never took, with its classified cause.
#[derive(Debug, Clone)]
pub struct SpuriousEdge {
    /// Call-site location.
    pub site: Loc,
    /// Callee definition location.
    pub callee: Loc,
    /// `path:line:col` rendering of the site.
    pub site_display: String,
    /// `path:line:col` rendering of the callee.
    pub callee_display: String,
    /// Classified root cause.
    pub cause: SpuriousCause,
    /// Whether the baseline graph already has the edge — `false` means
    /// the hints introduced it.
    pub in_baseline: bool,
    /// Human-readable one-line explanation.
    pub detail: String,
}

impl SpuriousEdge {
    /// Serializes the edge for the deterministic JSON report.
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("site", Json::Str(self.site_display.clone())),
            ("callee", Json::Str(self.callee_display.clone())),
            ("cause", Json::Str(self.cause.key().to_string())),
            ("in_baseline", Json::Bool(self.in_baseline)),
            ("detail", Json::Str(self.detail.clone())),
        ])
    }
}

/// Methods `aji-pta`'s `method_model` treats as listener registrations.
const LISTENER_METHODS: &[&str] = &["on", "once", "addListener", "prependListener"];

/// Methods with a stdlib callback model that invokes function arguments
/// at the call site.
const CALLBACK_METHODS: &[&str] = &[
    "forEach",
    "map",
    "filter",
    "find",
    "findIndex",
    "some",
    "every",
    "sort",
    "flatMap",
    "reduce",
    "reduceRight",
    "then",
    "catch",
    "finally",
];

/// Facts about one call expression, keyed by its location.
struct CallInfo {
    /// Static member name of the callee, if `E.p(..)`.
    method: Option<String>,
    /// Locations of function-literal arguments (`function` or arrow).
    fn_args: BTreeSet<Loc>,
}

/// The AST scan: call-site location → [`CallInfo`].
struct CallIndexBuilder<'a> {
    sm: &'a SourceMap,
    out: &'a mut BTreeMap<Loc, CallInfo>,
}

impl Visit for CallIndexBuilder<'_> {
    fn visit_expr(&mut self, e: &Expr) {
        if let ExprKind::Call { callee, args, .. } = &e.kind {
            let method = match &callee.unparen().kind {
                ExprKind::Member {
                    prop: MemberProp::Static(name),
                    ..
                } => Some(name.clone()),
                _ => None,
            };
            let mut fn_args = BTreeSet::new();
            for a in args {
                let au = a.expr.unparen();
                if matches!(au.kind, ExprKind::Function(_) | ExprKind::Arrow(_)) {
                    fn_args.insert(self.sm.loc(au.span));
                }
            }
            self.out
                .insert(self.sm.loc(e.span), CallInfo { method, fn_args });
        }
        walk_expr(self, e);
    }
}

fn build_call_index(parsed: &ParsedProject) -> BTreeMap<Loc, CallInfo> {
    let mut out = BTreeMap::new();
    for module in &parsed.modules {
        let mut b = CallIndexBuilder {
            sm: &parsed.source_map,
            out: &mut out,
        };
        b.visit_module(module);
    }
    out
}

/// Classifies every spurious edge (see the module docs for the precedence
/// chain). The result is ordered like `spurious` — i.e. by
/// `(site, callee)` location — so reports are deterministic.
#[must_use]
pub fn triage_spurious(
    parsed: &ParsedProject,
    baseline: &CallGraph,
    spurious: &BTreeSet<(Loc, Loc)>,
) -> Vec<SpuriousEdge> {
    let _span = aji_obs::span("oracle-triage-spurious");
    let calls = build_call_index(parsed);
    let sm = &parsed.source_map;

    let mut out = Vec::with_capacity(spurious.len());
    for &(site, callee) in spurious {
        let in_baseline = baseline.edges.contains(&(site, callee));
        let (cause, detail) = classify(site, callee, &calls, in_baseline);
        out.push(SpuriousEdge {
            site,
            callee,
            site_display: sm.display_loc(site),
            callee_display: sm.display_loc(callee),
            cause,
            in_baseline,
            detail,
        });
        aji_obs::counter_add(&format!("oracle.spurious_cause.{}", cause.key()), 1);
    }
    out
}

fn classify(
    site: Loc,
    callee: Loc,
    calls: &BTreeMap<Loc, CallInfo>,
    in_baseline: bool,
) -> (SpuriousCause, String) {
    if let Some(info) = calls.get(&site) {
        if let Some(m) = &info.method {
            if info.fn_args.contains(&callee) {
                if LISTENER_METHODS.contains(&m.as_str()) {
                    return (
                        SpuriousCause::ListenerModel,
                        format!(
                            "the name-based '.{m}' registration model attributes the \
                             listener's future invocation to the registration site; the \
                             run dispatched it elsewhere"
                        ),
                    );
                }
                if CALLBACK_METHODS.contains(&m.as_str()) {
                    return (
                        SpuriousCause::CallbackModel,
                        format!(
                            "the stdlib '.{m}' callback model invoked this argument, but \
                             the run never called it at this site"
                        ),
                    );
                }
            }
            if m == "call" || m == "apply" {
                return (
                    SpuriousCause::DotDispatch,
                    format!(
                        "the '.{m}' dispatch model invokes every function flowing into \
                         the receiver, not only the one the run picked"
                    ),
                );
            }
        }
    }
    if in_baseline {
        (
            SpuriousCause::StaticImprecision,
            "baseline over-approximation: flow-insensitive points-to keeps this edge \
             without any hint"
                .to_string(),
        )
    } else {
        (
            SpuriousCause::HintImprecision,
            "hint-only edge: a hint token's allocation-site abstraction merged distinct \
             runtime objects"
                .to_string(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aji_ast::Project;

    fn parse(src: &str) -> ParsedProject {
        let mut p = Project::new("t");
        p.add_file("index.js", src);
        aji_parser::parse_project(&p).unwrap()
    }

    #[test]
    fn cause_keys_are_unique_and_stable() {
        let keys: BTreeSet<&str> = SpuriousCause::all().iter().map(|c| c.key()).collect();
        assert_eq!(keys.len(), SpuriousCause::all().len());
        assert!(keys.contains("listener-model") && keys.contains("hint-imprecision"));
    }

    #[test]
    fn call_index_records_methods_and_function_arguments() {
        let parsed = parse(
            "var e = { on: function (n, f) { return f; } };\n\
             e.on('x', function handler() { return 1; });\n\
             plain(function cb() { return 2; });\n",
        );
        let calls = build_call_index(&parsed);
        let on_site = calls
            .values()
            .find(|c| c.method.as_deref() == Some("on"))
            .expect("e.on site indexed");
        assert_eq!(on_site.fn_args.len(), 1, "handler literal recorded");
        let plain = calls
            .values()
            .find(|c| c.method.is_none() && !c.fn_args.is_empty())
            .expect("plain call indexed");
        assert_eq!(plain.fn_args.len(), 1);
    }

    #[test]
    fn listener_model_beats_baseline_fallback() {
        let parsed =
            parse("var e = { on: function (n, f) { return f; } };\ne.on('x', function h() {});\n");
        let calls = build_call_index(&parsed);
        let (&site, info) = calls
            .iter()
            .find(|(_, c)| c.method.as_deref() == Some("on"))
            .unwrap();
        let &callee = info.fn_args.iter().next().unwrap();
        // Even when the edge is in the baseline (the model fires there
        // too), the listener model names the cause.
        let (cause, _) = classify(site, callee, &calls, true);
        assert_eq!(cause, SpuriousCause::ListenerModel);
    }

    #[test]
    fn fallback_splits_on_baseline_membership() {
        let calls = BTreeMap::new();
        let site = Loc {
            file: aji_ast::FileId(0),
            line: 1,
            col: 1,
        };
        let callee = Loc {
            file: aji_ast::FileId(0),
            line: 2,
            col: 1,
        };
        let (c1, _) = classify(site, callee, &calls, true);
        assert_eq!(c1, SpuriousCause::StaticImprecision);
        let (c2, _) = classify(site, callee, &calls, false);
        assert_eq!(c2, SpuriousCause::HintImprecision);
    }
}
