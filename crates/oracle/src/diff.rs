//! The differential harness: dynamic vs. static call graphs, edge by edge.
//!
//! [`run_oracle`] runs one project through the full pipeline — parse,
//! baseline analysis, approximate interpretation, hint-extended analysis,
//! and the concrete interpreter's call-graph tracer — and intersects the
//! three call graphs into an [`EdgeDiff`]:
//!
//! * **missed** — dynamic edges absent from the extended graph: the
//!   residual unsoundness the oracle exists to explain (they go to
//!   [`crate::triage()`]);
//! * **recovered** — dynamic edges the hints added over the baseline:
//!   the paper's headline recall improvement, per edge;
//! * **spurious** — extended edges *at dynamically exercised call sites*
//!   that the run never took: the precision cost, restricted to sites
//!   where the dynamic graph can actually contradict the static one.
//!
//! [`run_oracle_corpus`] fans the same computation over a corpus with
//! [`aji_bench::run_corpus_map`], so the aggregate report is byte-identical
//! whatever `--threads` says.

use crate::spurious::{triage_spurious, SpuriousCause, SpuriousEdge};
use crate::triage::{triage, Cause, MissedEdge};
use aji::{dynamic_call_graph_parsed, PipelineError};
use aji_approx::{approximate_interpret_parsed, ApproxOptions, ApproxStats};
use aji_ast::{Loc, Project};
use aji_bench::{run_corpus_map, ProjectResult};
use aji_interp::InterpOptions;
use aji_pta::{analyze_parsed, AnalysisOptions, Accuracy};
use aji_support::{Json, ToJson};
use std::collections::BTreeSet;

/// Options for one oracle run. The defaults mirror the main pipeline:
/// default approximation budgets, the full `extended()` hint set, and
/// default concrete-interpreter budgets for the dynamic run.
#[derive(Debug, Clone, Default)]
pub struct OracleOptions {
    /// Pre-analysis (approximate interpretation) options.
    pub approx: ApproxOptions,
    /// Hint rules applied in the extended analysis. The baseline is always
    /// [`AnalysisOptions::baseline`]; this controls only the extended run.
    pub analysis: AnalysisOptions,
    /// Interpreter budgets for the dynamic call-graph run.
    pub dynamic_interp: InterpOptions,
}

impl OracleOptions {
    /// A stable digest of every result-affecting option, for cache keys —
    /// the oracle-side counterpart of `aji::PipelineOptions::fingerprint`
    /// (the `aji serve` store keys cached `oracle` responses on it).
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        // Domain-separated from the pipeline fingerprint so an `analyze`
        // cache entry can never be mistaken for an `oracle` one.
        let mut h = aji_support::Fnv64::new(0x04AC_1E00);
        self.approx.fingerprint_into(&mut h);
        self.analysis.fingerprint_into(&mut h);
        self.dynamic_interp.fingerprint_into(&mut h);
        h.finish()
    }
}

/// Edge-level difference between the dynamic call graph and the two
/// static ones.
#[derive(Debug, Clone)]
pub struct EdgeDiff {
    /// Number of dynamically observed call edges.
    pub dynamic_edges: usize,
    /// Dynamic edges present in the extended graph.
    pub matched: BTreeSet<(Loc, Loc)>,
    /// Dynamic edges absent from the extended graph.
    pub missed: BTreeSet<(Loc, Loc)>,
    /// Dynamic edges in the extended graph but not the baseline —
    /// recall the hints bought.
    pub recovered: BTreeSet<(Loc, Loc)>,
    /// Extended edges at dynamically exercised call sites that the run
    /// never took.
    pub spurious: BTreeSet<(Loc, Loc)>,
    /// Baseline recall/precision against the dynamic graph.
    pub baseline: Accuracy,
    /// Extended recall/precision against the dynamic graph.
    pub extended: Accuracy,
}

impl EdgeDiff {
    /// Intersects the three call graphs.
    #[must_use]
    pub fn compute(
        baseline: &aji_pta::CallGraph,
        extended: &aji_pta::CallGraph,
        dynamic: &BTreeSet<(Loc, Loc)>,
    ) -> EdgeDiff {
        let matched: BTreeSet<_> = dynamic.intersection(&extended.edges).copied().collect();
        let missed: BTreeSet<_> = dynamic.difference(&extended.edges).copied().collect();
        let recovered: BTreeSet<_> = matched
            .iter()
            .filter(|e| !baseline.edges.contains(e))
            .copied()
            .collect();
        // Sites the dynamic run exercised: only there can an extended
        // edge be *contradicted* rather than merely unobserved.
        let covered_sites: BTreeSet<Loc> = dynamic.iter().map(|&(s, _)| s).collect();
        let spurious: BTreeSet<_> = extended
            .edges
            .iter()
            .filter(|&&(s, _)| covered_sites.contains(&s))
            .filter(|e| !dynamic.contains(e))
            .copied()
            .collect();
        EdgeDiff {
            dynamic_edges: dynamic.len(),
            matched,
            missed,
            recovered,
            spurious,
            baseline: Accuracy::compare(baseline, dynamic),
            extended: Accuracy::compare(extended, dynamic),
        }
    }

    /// Serializes the diff's counts and accuracy (not the raw edge sets)
    /// for the deterministic report.
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("dynamic_edges", Json::Num(self.dynamic_edges as f64)),
            ("matched", Json::Num(self.matched.len() as f64)),
            ("missed", Json::Num(self.missed.len() as f64)),
            ("recovered", Json::Num(self.recovered.len() as f64)),
            ("spurious", Json::Num(self.spurious.len() as f64)),
            ("baseline", self.baseline.to_json()),
            ("extended", self.extended.to_json()),
        ])
    }
}

/// The oracle's verdict on one project.
#[derive(Debug)]
pub struct ProjectOracle {
    /// `Project::name`.
    pub name: String,
    /// Edge-level diff of the three call graphs.
    pub diff: EdgeDiff,
    /// Every missed edge, triaged (ordered by `(site, callee)`).
    pub missed: Vec<MissedEdge>,
    /// Every spurious edge, triaged (ordered by `(site, callee)`).
    pub spurious: Vec<SpuriousEdge>,
    /// Total hints the approximate interpretation produced
    /// (`|H_R| + |H_W| + |proxy reads|`).
    pub hint_count: usize,
    /// Approximate-interpretation run statistics.
    pub approx_stats: ApproxStats,
}

impl ProjectOracle {
    /// The cause histogram: every [`Cause`] (in fixed order) with the
    /// number of missed edges it explains, zeros included so reports from
    /// different projects align.
    #[must_use]
    pub fn histogram(&self) -> Vec<(&'static str, usize)> {
        Cause::all()
            .iter()
            .map(|c| {
                (
                    c.key(),
                    self.missed.iter().filter(|m| m.cause == *c).count(),
                )
            })
            .collect()
    }

    /// The spurious-cause histogram: every [`SpuriousCause`] (in fixed
    /// order) with the number of spurious edges it explains, zeros
    /// included so reports from different projects align.
    #[must_use]
    pub fn spurious_histogram(&self) -> Vec<(&'static str, usize)> {
        SpuriousCause::all()
            .iter()
            .map(|c| {
                (
                    c.key(),
                    self.spurious.iter().filter(|s| s.cause == *c).count(),
                )
            })
            .collect()
    }

    /// The missed edges that count as **findings**: a hint already names
    /// the callee ([`MissedEdge::hint_covered`]), so the extended analysis
    /// had the information and still missed — an unsoundness regression,
    /// not a documented limit of the approach.
    #[must_use]
    pub fn findings(&self) -> Vec<&MissedEdge> {
        self.missed.iter().filter(|m| m.hint_covered).collect()
    }

    /// Serializes the project verdict for the deterministic report.
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("name", Json::Str(self.name.clone())),
            ("diff", self.diff.to_json()),
            (
                "causes",
                Json::Obj(
                    self.histogram()
                        .into_iter()
                        .map(|(k, n)| (k.to_string(), Json::Num(n as f64)))
                        .collect(),
                ),
            ),
            (
                "spurious_causes",
                Json::Obj(
                    self.spurious_histogram()
                        .into_iter()
                        .map(|(k, n)| (k.to_string(), Json::Num(n as f64)))
                        .collect(),
                ),
            ),
            (
                "missed",
                Json::Arr(self.missed.iter().map(MissedEdge::to_json).collect()),
            ),
            (
                "spurious_edges",
                Json::Arr(self.spurious.iter().map(SpuriousEdge::to_json).collect()),
            ),
            (
                "findings",
                Json::Num(self.missed.iter().filter(|m| m.hint_covered).count() as f64),
            ),
            ("hints", Json::Num(self.hint_count as f64)),
        ])
    }
}

/// Runs the differential oracle on one project.
///
/// # Errors
///
/// [`PipelineError::Parse`] if the project does not parse,
/// [`PipelineError::Dynamic`] if the concrete interpreter cannot be
/// constructed at all (a crashing test driver is *not* an error — the
/// partial dynamic graph is used, like a partially covering test suite).
///
/// # Example
///
/// ```
/// use aji_oracle::{run_oracle, OracleOptions};
///
/// let project = aji_corpus::pattern_projects().remove(0);
/// let oracle = run_oracle(&project, &OracleOptions::default()).unwrap();
/// // Hints never hurt recall: everything the baseline had, extended keeps.
/// assert!(oracle.diff.extended.matched_edges >= oracle.diff.baseline.matched_edges);
/// ```
pub fn run_oracle(
    project: &Project,
    opts: &OracleOptions,
) -> Result<ProjectOracle, PipelineError> {
    let parsed = aji_parser::parse_project(project)?;
    run_oracle_parsed(project, &parsed, opts)
}

/// [`run_oracle`] over an already-parsed project — the cache-aware entry
/// point the `aji serve` daemon uses so an `oracle` request reuses the
/// modules its content-hash-keyed parse cache already holds (the oracle's
/// four phases then run parse-free, like the PR 4 pipeline).
///
/// # Errors
///
/// As [`run_oracle`], minus the parse errors.
pub fn run_oracle_parsed(
    project: &Project,
    parsed: &aji_parser::ParsedProject,
    opts: &OracleOptions,
) -> Result<ProjectOracle, PipelineError> {
    let _span = aji_obs::span("oracle");

    let baseline = {
        let _s = aji_obs::span("baseline");
        analyze_parsed(project, parsed, None, &AnalysisOptions::baseline())
    };
    let approx = {
        let _s = aji_obs::span("approx");
        approximate_interpret_parsed(project, parsed, &opts.approx)
    };
    let extended = {
        let _s = aji_obs::span("extended");
        analyze_parsed(project, parsed, Some(&approx.hints), &opts.analysis)
    };
    let dynamic = {
        let _s = aji_obs::span("dynamic");
        dynamic_call_graph_parsed(project, parsed, &opts.dynamic_interp).ok_or_else(|| {
            PipelineError::Dynamic("could not construct the concrete interpreter".to_string())
        })?
    };

    let diff = {
        let _s = aji_obs::span("diff");
        EdgeDiff::compute(&baseline.call_graph, &extended.call_graph, &dynamic)
    };
    let missed = triage(
        parsed,
        &approx.hints,
        &approx,
        &extended.call_graph,
        &diff.missed,
    );
    let spurious = triage_spurious(parsed, &baseline.call_graph, &diff.spurious);
    aji_obs::counter_add("oracle.missed_edges", diff.missed.len() as u64);
    aji_obs::counter_add("oracle.spurious_edges", diff.spurious.len() as u64);
    aji_obs::counter_add(
        "oracle.findings",
        missed.iter().filter(|m| m.hint_covered).count() as u64,
    );
    if let Some(rec) = aji_obs::trace_recorder() {
        // One flight-recorder event per finding (hint-covered missed
        // edge), in triage order — `missed` is sorted by (site, callee),
        // so the stream is deterministic.
        for m in missed.iter().filter(|m| m.hint_covered) {
            rec.record(
                aji_obs::TraceKind::OracleFinding,
                &format!("{} -> {}", m.site_display, m.callee_display),
                m.cause.key(),
            );
        }
    }

    let hint_count = approx.hints.reads.values().map(BTreeSet::len).sum::<usize>()
        + approx.hints.writes.len()
        + approx.hints.proxy_reads.len();
    Ok(ProjectOracle {
        name: project.name.clone(),
        diff,
        missed,
        spurious,
        hint_count,
        approx_stats: approx.stats,
    })
}

/// Corpus-level aggregate of per-project oracle runs.
#[derive(Debug)]
pub struct CorpusOracle {
    /// Per-project verdicts, in corpus order (failures excluded).
    pub projects: Vec<ProjectOracle>,
    /// Projects that failed the pipeline: `(name, error)` in corpus order.
    pub errors: Vec<(String, String)>,
}

impl CorpusOracle {
    /// Total dynamic / missed / recovered / spurious edge counts over all
    /// projects.
    #[must_use]
    pub fn totals(&self) -> (usize, usize, usize, usize) {
        let mut t = (0, 0, 0, 0);
        for p in &self.projects {
            t.0 += p.diff.dynamic_edges;
            t.1 += p.diff.missed.len();
            t.2 += p.diff.recovered.len();
            t.3 += p.diff.spurious.len();
        }
        t
    }

    /// The corpus-wide cause histogram (every cause, zeros included).
    #[must_use]
    pub fn histogram(&self) -> Vec<(&'static str, usize)> {
        Cause::all()
            .iter()
            .map(|c| {
                (
                    c.key(),
                    self.projects
                        .iter()
                        .flat_map(|p| &p.missed)
                        .filter(|m| m.cause == *c)
                        .count(),
                )
            })
            .collect()
    }

    /// The corpus-wide spurious-cause histogram (every cause, zeros
    /// included).
    #[must_use]
    pub fn spurious_histogram(&self) -> Vec<(&'static str, usize)> {
        SpuriousCause::all()
            .iter()
            .map(|c| {
                (
                    c.key(),
                    self.projects
                        .iter()
                        .flat_map(|p| &p.spurious)
                        .filter(|s| s.cause == *c)
                        .count(),
                )
            })
            .collect()
    }

    /// Micro-averaged corpus recall, `(baseline_pct, extended_pct)` —
    /// total matched edges over total dynamic edges.
    #[must_use]
    pub fn recall(&self) -> (f64, f64) {
        let dynamic: usize = self.projects.iter().map(|p| p.diff.dynamic_edges).sum();
        if dynamic == 0 {
            return (100.0, 100.0);
        }
        let base: usize = self
            .projects
            .iter()
            .map(|p| p.diff.baseline.matched_edges)
            .sum();
        let ext: usize = self
            .projects
            .iter()
            .map(|p| p.diff.extended.matched_edges)
            .sum();
        (
            base as f64 / dynamic as f64 * 100.0,
            ext as f64 / dynamic as f64 * 100.0,
        )
    }

    /// The deterministic corpus report: excludes every wall-clock field,
    /// so two runs over the same corpus (any thread count) print
    /// byte-identical text.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let (dynamic, missed, recovered, spurious) = self.totals();
        let (base_recall, ext_recall) = self.recall();
        Json::obj(vec![
            ("projects", Json::Num(self.projects.len() as f64)),
            ("errors", Json::Num(self.errors.len() as f64)),
            ("dynamic_edges", Json::Num(dynamic as f64)),
            ("missed", Json::Num(missed as f64)),
            ("recovered", Json::Num(recovered as f64)),
            ("spurious", Json::Num(spurious as f64)),
            ("baseline_recall_pct", Json::Num(base_recall)),
            ("extended_recall_pct", Json::Num(ext_recall)),
            (
                "causes",
                Json::Obj(
                    self.histogram()
                        .into_iter()
                        .map(|(k, n)| (k.to_string(), Json::Num(n as f64)))
                        .collect(),
                ),
            ),
            (
                "spurious_causes",
                Json::Obj(
                    self.spurious_histogram()
                        .into_iter()
                        .map(|(k, n)| (k.to_string(), Json::Num(n as f64)))
                        .collect(),
                ),
            ),
            (
                "per_project",
                Json::Arr(self.projects.iter().map(ProjectOracle::to_json).collect()),
            ),
            (
                "failures",
                Json::Arr(
                    self.errors
                        .iter()
                        .map(|(n, e)| {
                            Json::obj(vec![
                                ("name", Json::Str(n.clone())),
                                ("error", Json::Str(e.clone())),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

/// Runs [`run_oracle`] over a corpus on up to `threads` workers
/// (`0` = auto), preserving corpus order — the report is byte-identical
/// to a serial run.
#[must_use]
pub fn run_oracle_corpus(
    projects: Vec<Project>,
    opts: &OracleOptions,
    threads: usize,
) -> CorpusOracle {
    let results: Vec<ProjectResult<ProjectOracle, PipelineError>> =
        run_corpus_map(projects, threads, |p| run_oracle(p, opts));
    let mut oracle = CorpusOracle {
        projects: Vec::with_capacity(results.len()),
        errors: Vec::new(),
    };
    for r in results {
        match r.outcome {
            Ok(p) => oracle.projects.push(p),
            Err(e) => oracle.errors.push((r.name, e.to_string())),
        }
    }
    oracle
}
