//! The seeded soundness fuzzer: generate, diff, triage, shrink, repeat.
//!
//! [`run_fuzz`] drives the `aji-corpus` generator in a loop-until-dry:
//! each batch draws fresh [`GenConfig`]s through a recorded
//! [`TestCase`] choice sequence (so every generated project is replayable
//! from its choices alone), runs the differential oracle on each, and
//! flags any **finding** — a dynamic edge the hint-augmented analysis
//! missed even though a hint already names the callee
//! ([`crate::MissedEdge::hint_covered`]). Misses with other causes (the
//! documented limits: proxy-dependent keys, eval, coverage) are counted in
//! the histogram but are not findings, which is what lets a healthy
//! build's fuzz run go *dry* and exit clean.
//!
//! The first few findings are then **shrunk** with
//! [`aji_support::check::shrink_choices`]: the choice sequence is
//! minimised while the finding persists, and the minimal sequence is
//! replayed into a reproducer — generator config, project source and the
//! surviving missed edges — embedded in the report.
//!
//! Everything is deterministic in `(seed, cases)`: batches have a fixed
//! size, per-case seeds come from [`aji_support::rng::splitmix64`], the
//! fan-out preserves input order, and the shrinker is itself
//! deterministic — so the JSON report is byte-identical across runs and
//! thread counts.

use crate::diff::{run_oracle, OracleOptions};
use crate::triage::{Cause, MissedEdge};
use aji::PipelineError;
use aji_ast::Project;
use aji_bench::{run_corpus_map, ProjectResult};
use aji_corpus::{generate, GenConfig};
use aji_support::check::{shrink_choices, TestCase};
use aji_support::rng::splitmix64;
use aji_support::Json;

/// Cases evaluated per batch. Fixed (never derived from `--threads`) so
/// the dry-out point, and hence the whole report, is thread-invariant.
const BATCH: usize = 8;

/// Consecutive zero-finding batches before the fuzzer stops early.
const DRY_BATCHES: usize = 2;

/// Options for [`run_fuzz`].
#[derive(Debug, Clone)]
pub struct FuzzOptions {
    /// Master seed; every per-case seed derives from it.
    pub seed: u64,
    /// Maximum cases to evaluate (the loop may stop earlier when dry).
    pub cases: usize,
    /// Worker threads for the per-batch fan-out (`0` = auto).
    pub threads: usize,
    /// Findings to shrink (shrinking re-runs the pipeline many times, so
    /// only the first few findings get a reproducer).
    pub max_shrunk: usize,
    /// Shrink budget per finding, in property executions.
    pub max_shrink_runs: u32,
    /// Pipeline options for each differential run.
    pub oracle: OracleOptions,
}

impl Default for FuzzOptions {
    fn default() -> Self {
        FuzzOptions {
            seed: 1,
            cases: 50,
            threads: 0,
            max_shrunk: 3,
            max_shrink_runs: 200,
            oracle: OracleOptions::default(),
        }
    }
}

/// The per-case seed: a [`splitmix64`] stream over the master seed, so
/// neighbouring cases get statistically independent generators.
#[must_use]
pub fn case_seed(seed: u64, case: usize) -> u64 {
    let mut s = seed ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    splitmix64(&mut s)
}

/// Draws one generator config from a recorded choice sequence.
///
/// Every field that shapes the program comes from `tc`, so a shrunk
/// choice sequence replays into a (smaller) config; the all-zeroes
/// sequence is still a valid config. Dynamic-idiom knobs
/// (`dynamic_fraction`, `computed_writes`, `accessor_methods`,
/// `hard_dispatch_fraction`) are all exercised.
#[must_use]
pub fn case_config(tc: &mut TestCase, case: usize) -> GenConfig {
    GenConfig {
        name: format!("fuzz-{case:04}"),
        seed: tc.choice(0xFFFF_FFFF),
        libs: tc.int_in(1..4),
        methods_per_lib: tc.int_in(1..6),
        dynamic_fraction: tc.int_in(0..11_usize) as f64 / 10.0,
        app_modules: tc.int_in(1..4),
        calls_per_module: tc.int_in(1..6),
        use_mixin: tc.bool(),
        use_emitter: tc.bool(),
        driver_coverage: tc.int_in(0..11_usize) as f64 / 10.0,
        vulns: 0,
        hard_dispatch_fraction: if tc.bool() { 0.3 } else { 0.0 },
        computed_writes: tc.int_in(0..4),
        accessor_methods: tc.int_in(0..3),
        // The fuzzer hunts unsoundness in call-graph recovery; seeded
        // property typos are the finder's concern, not the fuzzer's.
        typo_injections: 0,
    }
}

/// A minimal replayable counterexample for one finding.
#[derive(Debug, Clone)]
pub struct Reproducer {
    /// The shrunk choice sequence ([`TestCase::for_choices`] +
    /// [`case_config`] rebuilds the project).
    pub choices: Vec<u64>,
    /// Full source of the shrunk project, files concatenated under
    /// `// ==== path ====` headers.
    pub source: String,
    /// The findings that survive in the shrunk project.
    pub missed: Vec<MissedEdge>,
    /// Number of files in the shrunk project.
    pub files: usize,
    /// Property executions the shrinker spent.
    pub shrink_runs: u32,
}

/// One fuzzer finding: a generated project where the hint-augmented
/// analysis missed a dynamic edge *despite a hint naming the callee*.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Case index within the run.
    pub case: usize,
    /// Generated project name.
    pub name: String,
    /// The recorded choice sequence that generated the project.
    pub choices: Vec<u64>,
    /// The hint-covered missed edges, triaged.
    pub missed: Vec<MissedEdge>,
    /// The shrunk reproducer, for the first [`FuzzOptions::max_shrunk`]
    /// findings.
    pub shrunk: Option<Reproducer>,
}

impl Finding {
    /// Serializes the finding for the deterministic report.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let mut pairs = vec![
            ("case", Json::Num(self.case as f64)),
            ("name", Json::Str(self.name.clone())),
            (
                "choices",
                Json::Arr(self.choices.iter().map(|&c| Json::Num(c as f64)).collect()),
            ),
            (
                "missed",
                Json::Arr(self.missed.iter().map(MissedEdge::to_json).collect()),
            ),
        ];
        match &self.shrunk {
            Some(r) => pairs.push((
                "shrunk",
                Json::obj(vec![
                    (
                        "choices",
                        Json::Arr(r.choices.iter().map(|&c| Json::Num(c as f64)).collect()),
                    ),
                    ("files", Json::Num(r.files as f64)),
                    ("shrink_runs", Json::Num(f64::from(r.shrink_runs))),
                    (
                        "missed",
                        Json::Arr(r.missed.iter().map(MissedEdge::to_json).collect()),
                    ),
                    ("source", Json::Str(r.source.clone())),
                ]),
            )),
            None => pairs.push(("shrunk", Json::Null)),
        }
        Json::obj(pairs)
    }
}

/// The full fuzzer report.
#[derive(Debug)]
pub struct FuzzReport {
    /// Master seed the run used.
    pub seed: u64,
    /// `--cases` as requested.
    pub cases_requested: usize,
    /// Cases actually evaluated (≤ requested when the run went dry).
    pub cases_run: usize,
    /// Total dynamic edges observed over all cases.
    pub dynamic_edges: usize,
    /// Total missed edges (all causes) over all cases.
    pub missed_edges: usize,
    /// Corpus-wide cause histogram, every cause, zeros included.
    pub causes: Vec<(&'static str, usize)>,
    /// The findings (unsoundness regressions), in case order.
    pub findings: Vec<Finding>,
    /// Cases whose pipeline failed outright: `(name, error)`.
    pub errors: Vec<(String, String)>,
}

impl FuzzReport {
    /// `true` when the run produced no findings and no pipeline errors —
    /// the healthy-build outcome.
    #[must_use]
    pub fn clean(&self) -> bool {
        self.findings.is_empty() && self.errors.is_empty()
    }

    /// The deterministic JSON report (no wall-clock fields).
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("seed", Json::Num(self.seed as f64)),
            ("cases_requested", Json::Num(self.cases_requested as f64)),
            ("cases_run", Json::Num(self.cases_run as f64)),
            ("dynamic_edges", Json::Num(self.dynamic_edges as f64)),
            ("missed_edges", Json::Num(self.missed_edges as f64)),
            (
                "causes",
                Json::Obj(
                    self.causes
                        .iter()
                        .map(|&(k, n)| (k.to_string(), Json::Num(n as f64)))
                        .collect(),
                ),
            ),
            (
                "findings",
                Json::Arr(self.findings.iter().map(Finding::to_json).collect()),
            ),
            (
                "errors",
                Json::Arr(
                    self.errors
                        .iter()
                        .map(|(n, e)| {
                            Json::obj(vec![
                                ("name", Json::Str(n.clone())),
                                ("error", Json::Str(e.clone())),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// A short human-readable summary (multi-line).
    #[must_use]
    pub fn summary_text(&self) -> String {
        let mut out = format!(
            "fuzz: seed {} | {}/{} cases | {} dynamic edges | {} missed\n",
            self.seed, self.cases_run, self.cases_requested, self.dynamic_edges, self.missed_edges
        );
        out.push_str("causes:");
        for (k, n) in &self.causes {
            if *n > 0 {
                out.push_str(&format!(" {k}={n}"));
            }
        }
        out.push('\n');
        if self.clean() {
            out.push_str("no findings: every hint-covered dynamic edge was recovered\n");
        } else {
            out.push_str(&format!(
                "{} finding(s), {} error(s)\n",
                self.findings.len(),
                self.errors.len()
            ));
            for f in &self.findings {
                out.push_str(&format!("  {} ({} hint-covered miss(es))", f.name, f.missed.len()));
                if let Some(r) = &f.shrunk {
                    out.push_str(&format!(
                        " -> shrunk to {} choice(s), {} file(s) in {} runs",
                        r.choices.len(),
                        r.files,
                        r.shrink_runs
                    ));
                }
                out.push('\n');
            }
        }
        out
    }
}

/// Extracts the hint-covered misses — the finding criterion.
fn hint_covered(missed: &[MissedEdge]) -> Vec<MissedEdge> {
    missed.iter().filter(|m| m.hint_covered).cloned().collect()
}

/// Concatenates a project's files under `// ==== path ====` headers.
fn render_source(project: &Project) -> String {
    let mut out = String::new();
    for f in &project.files {
        out.push_str(&format!("// ==== {} ====\n", f.path));
        out.push_str(&f.src);
        if !f.src.ends_with('\n') {
            out.push('\n');
        }
    }
    out
}

/// Runs the soundness fuzzer. See the module docs for the loop shape;
/// the result is deterministic in `(opts.seed, opts.cases)` whatever
/// `opts.threads` is.
#[must_use]
pub fn run_fuzz(opts: &FuzzOptions) -> FuzzReport {
    let _span = aji_obs::span("fuzz");
    let mut report = FuzzReport {
        seed: opts.seed,
        cases_requested: opts.cases,
        cases_run: 0,
        dynamic_edges: 0,
        missed_edges: 0,
        causes: Cause::all().iter().map(|c| (c.key(), 0)).collect(),
        findings: Vec::new(),
        errors: Vec::new(),
    };

    let mut dry = 0usize;
    while report.cases_run < opts.cases && dry < DRY_BATCHES {
        let lo = report.cases_run;
        let hi = (lo + BATCH).min(opts.cases);

        // Generate the batch serially, recording each case's choices.
        let mut metas: Vec<(usize, Vec<u64>)> = Vec::with_capacity(hi - lo);
        let mut projects: Vec<Project> = Vec::with_capacity(hi - lo);
        for case in lo..hi {
            let mut tc = TestCase::with_seed(case_seed(opts.seed, case));
            let cfg = case_config(&mut tc, case);
            projects.push(generate(&cfg));
            metas.push((case, tc.choices().to_vec()));
        }

        // Fan the oracle out; results come back in input (case) order.
        let results: Vec<ProjectResult<_, PipelineError>> =
            run_corpus_map(projects, opts.threads, |p| run_oracle(p, &opts.oracle));

        let mut batch_findings = 0usize;
        for ((case, choices), r) in metas.into_iter().zip(results) {
            match r.outcome {
                Ok(po) => {
                    report.dynamic_edges += po.diff.dynamic_edges;
                    report.missed_edges += po.diff.missed.len();
                    for m in &po.missed {
                        if let Some(slot) =
                            report.causes.iter_mut().find(|(k, _)| *k == m.cause.key())
                        {
                            slot.1 += 1;
                        }
                    }
                    let covered = hint_covered(&po.missed);
                    if !covered.is_empty() {
                        batch_findings += 1;
                        report.findings.push(Finding {
                            case,
                            name: r.name,
                            choices,
                            missed: covered,
                            shrunk: None,
                        });
                    }
                }
                Err(e) => report.errors.push((r.name, e.to_string())),
            }
        }
        report.cases_run = hi;
        if batch_findings == 0 {
            dry += 1;
        } else {
            dry = 0;
        }
    }

    // Shrink the first few findings to minimal reproducers.
    let n_shrink = report.findings.len().min(opts.max_shrunk);
    for f in report.findings.iter_mut().take(n_shrink) {
        let _s = aji_obs::span("shrink");
        f.shrunk = Some(shrink_finding(f, opts));
    }
    aji_obs::counter_add("fuzz.cases", report.cases_run as u64);
    aji_obs::counter_add("fuzz.findings", report.findings.len() as u64);
    report
}

/// Minimises one finding's choice sequence and replays it into a
/// [`Reproducer`].
fn shrink_finding(f: &Finding, opts: &FuzzOptions) -> Reproducer {
    let case = f.case;
    let oracle_opts = opts.oracle.clone();
    // The property FAILS (Err) while the finding persists; pipeline
    // errors count as passing so the shrinker never trades the soundness
    // bug for a differently broken program.
    let prop = move |tc: &mut TestCase| -> Result<(), String> {
        let cfg = case_config(tc, case);
        let project = generate(&cfg);
        match run_oracle(&project, &oracle_opts) {
            Ok(po) if po.missed.iter().any(|m| m.hint_covered) => {
                Err("hint-covered dynamic edge still missed".to_string())
            }
            _ => Ok(()),
        }
    };
    let (choices, _msg, shrink_runs) = shrink_choices(
        f.choices.clone(),
        "hint-covered dynamic edge still missed".to_string(),
        opts.max_shrink_runs,
        prop,
    );

    // Replay the minimal sequence into the reproducer.
    let mut tc = TestCase::for_choices(choices.clone());
    let cfg = case_config(&mut tc, case);
    let project = generate(&cfg);
    let missed = match run_oracle(&project, &opts.oracle) {
        Ok(po) => hint_covered(&po.missed),
        Err(_) => Vec::new(),
    };
    aji_obs::counter_add("fuzz.shrink_runs", u64::from(shrink_runs));
    Reproducer {
        choices,
        source: render_source(&project),
        missed,
        files: project.files.len(),
        shrink_runs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn case_seed_is_deterministic_and_well_spread() {
        assert_eq!(case_seed(1, 3), case_seed(1, 3));
        assert_ne!(case_seed(1, 3), case_seed(2, 3));
        let seeds: BTreeSet<u64> = (0..100).map(|c| case_seed(1, c)).collect();
        assert_eq!(seeds.len(), 100, "per-case seeds must not collide");
    }

    #[test]
    fn case_config_replays_exactly_from_recorded_choices() {
        let mut tc = TestCase::with_seed(case_seed(9, 4));
        let cfg = case_config(&mut tc, 4);
        let mut replay = TestCase::for_choices(tc.choices().to_vec());
        let cfg2 = case_config(&mut replay, 4);
        assert_eq!(format!("{cfg:?}"), format!("{cfg2:?}"));
    }

    #[test]
    fn all_zero_choices_make_a_valid_minimal_config() {
        let mut tc = TestCase::for_choices(Vec::new());
        let cfg = case_config(&mut tc, 0);
        assert_eq!((cfg.libs, cfg.app_modules, cfg.calls_per_module), (1, 1, 1));
        assert_eq!(cfg.computed_writes, 0);
        let project = generate(&cfg);
        assert!(aji_parser::parse_project(&project).is_ok());
    }

    #[test]
    fn render_source_headers_every_file() {
        let mut tc = TestCase::for_choices(Vec::new());
        let project = generate(&case_config(&mut tc, 0));
        let src = render_source(&project);
        for f in &project.files {
            assert!(src.contains(&format!("// ==== {} ====", f.path)));
        }
    }
}
