//! `aji-oracle` — the differential soundness oracle's command line.
//!
//! Default mode runs the soundness fuzzer ([`aji_oracle::run_fuzz`]);
//! `--patterns` runs the differential harness over the hand-written
//! pattern corpus instead. Output is deterministic in `(--seed,
//! --cases)` whatever `--threads` says; `--json` prints the full report,
//! `--obs FILE` additionally writes an `aji-obs` ObsReport.
//!
//! Exit codes: `0` clean, `1` findings or pipeline errors, `2` usage.

use aji_oracle::{run_fuzz, run_oracle_corpus, FuzzOptions, OracleOptions};
use std::process::ExitCode;
use std::sync::Arc;

struct Cli {
    seed: u64,
    cases: usize,
    threads: usize,
    json: bool,
    patterns: bool,
    obs: Option<String>,
}

const USAGE: &str = "usage: aji-oracle [options]

Differential soundness oracle: fuzzes the corpus generator for dynamic
call edges the hint-augmented analysis misses despite having a hint for
them, triages every miss, and shrinks findings to minimal reproducers.

options:
  --seed N       master seed for the fuzzer (default 1)
  --cases N      maximum fuzz cases to evaluate (default 50)
  --threads N    worker threads, 0 = auto (default: AJI_THREADS or 0)
  --json         print the full deterministic JSON report
  --patterns     run the differential harness over the hand-written
                 pattern corpus instead of fuzzing
  --obs FILE     also write an aji-obs ObsReport (JSON) to FILE
  -h, --help     show this help

exit codes: 0 = clean, 1 = findings or pipeline errors, 2 = usage error";

fn parse_args(args: Vec<String>) -> Result<Cli, String> {
    let mut cli = Cli {
        seed: 1,
        cases: 50,
        threads: aji_support::par::threads_from_env(),
        json: false,
        patterns: false,
        obs: None,
    };
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        let mut take = |flag: &str| -> Result<String, String> {
            it.next().ok_or_else(|| format!("{flag} expects a value"))
        };
        match a.as_str() {
            "--seed" => {
                let v = take("--seed")?;
                cli.seed = v.parse().map_err(|_| format!("invalid --seed value: {v}"))?;
            }
            "--cases" => {
                let v = take("--cases")?;
                cli.cases = v
                    .parse()
                    .map_err(|_| format!("invalid --cases value: {v}"))?;
            }
            "--threads" => {
                let v = take("--threads")?;
                cli.threads = v
                    .parse()
                    .map_err(|_| format!("invalid --threads value: {v}"))?;
            }
            "--obs" => cli.obs = Some(take("--obs")?),
            "--json" => cli.json = true,
            "--patterns" => cli.patterns = true,
            other => match other.strip_prefix("--threads=") {
                Some(v) => {
                    cli.threads = v
                        .parse()
                        .map_err(|_| format!("invalid --threads value: {v}"))?;
                }
                None => return Err(format!("unknown argument: {other}")),
            },
        }
    }
    Ok(cli)
}

fn run(cli: &Cli) -> ExitCode {
    if cli.patterns {
        let corpus = run_oracle_corpus(
            aji_corpus::pattern_projects(),
            &OracleOptions::default(),
            cli.threads,
        );
        if cli.json {
            println!("{}", corpus.to_json());
        } else {
            let (dynamic, missed, recovered, spurious) = corpus.totals();
            let (base, ext) = corpus.recall();
            println!(
                "patterns: {} project(s), {} error(s) | {dynamic} dynamic edges | \
                 {missed} missed, {recovered} recovered, {spurious} spurious",
                corpus.projects.len(),
                corpus.errors.len(),
            );
            println!("recall: baseline {base:.1}% -> extended {ext:.1}%");
            print!("causes:");
            for (k, n) in corpus.histogram() {
                if n > 0 {
                    print!(" {k}={n}");
                }
            }
            println!();
        }
        // Pattern projects exercise idioms the analysis is *expected* to
        // miss (hard dispatch); only pipeline errors fail the run.
        return if corpus.errors.is_empty() {
            ExitCode::SUCCESS
        } else {
            ExitCode::from(1)
        };
    }

    let report = run_fuzz(&FuzzOptions {
        seed: cli.seed,
        cases: cli.cases,
        threads: cli.threads,
        ..FuzzOptions::default()
    });
    if cli.json {
        println!("{}", report.to_json());
    } else {
        print!("{}", report.summary_text());
    }
    if report.clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    let cli = match parse_args(args) {
        Ok(cli) => cli,
        Err(e) => {
            eprintln!("aji-oracle: {e}");
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    match &cli.obs {
        Some(path) => {
            let reg = Arc::new(aji_obs::Registry::new());
            let code = aji_obs::scoped(&reg, || run(&cli));
            if let Err(e) = std::fs::write(path, reg.report().to_json_string()) {
                eprintln!("aji-oracle: cannot write {path}: {e}");
                return ExitCode::from(2);
            }
            code
        }
        None => run(&cli),
    }
}
