//! Root-cause triage for missed call edges.
//!
//! For every dynamic edge the hint-augmented analysis failed to find, the
//! triage pass inspects the AST around the call site and the hint sets the
//! approximate interpretation produced, and assigns one [`Cause`] — the
//! edge-level analogue of the root-cause quantification of Chakraborty et
//! al. for JavaScript call graphs, specialised to the idioms this
//! reproduction models.
//!
//! The classification is a fixed precedence chain (first match wins), so
//! two runs over the same project always agree:
//!
//! 1. the call site reads a **computed property** → a read-side cause:
//!    [`Cause::DynamicRead`] when a read hint names the callee (a genuine
//!    \[DPR\] failure) or when no hint recovered it, and
//!    [`Cause::HigherOrderProxy`] when the key came from a caller-supplied
//!    parameter or was read off the proxy `p*` during forced execution;
//! 2. the callee is the **value of a recorded write hint** →
//!    [`Cause::DynamicWrite`] (a genuine \[DPW\] failure — the hint exists
//!    but the rule did not land the edge);
//! 3. an **`eval` call** appears in the site's or the callee's file →
//!    [`Cause::EvalApi`];
//! 4. a **dynamic `require`** appears in the site's file, or the callee's
//!    module is not reachable in the extended call graph →
//!    [`Cause::DynamicRequire`];
//! 5. the callee was **never forced-executed** by the approximate
//!    interpretation → [`Cause::BudgetExhausted`];
//! 6. otherwise [`Cause::Unknown`].
//!
//! Each [`MissedEdge`] also carries [`MissedEdge::hint_covered`]: whether
//! a hint *already names the callee* for that edge, i.e. whether the
//! extended analysis had everything it needed and still missed. Those are
//! the unsoundness regressions the fuzzer flags; the other causes are the
//! documented limits of the approach (proxy-dependent keys, coverage).

use aji_approx::{ApproxResult, Hints, WriteHint};
use aji_ast::ast::{Expr, ExprKind, Function, MemberProp, Pattern, PatternKind};
use aji_ast::visit::{walk_expr, walk_function, FunctionCollector, Visit};
use aji_ast::{FileId, Loc, NodeId, SourceMap};
use aji_parser::ParsedProject;
use aji_pta::CallGraph;
use aji_support::Json;
use std::collections::{BTreeMap, BTreeSet};

/// Why the extended analysis missed a dynamically observed call edge.
///
/// Variants are ordered by triage precedence (see the module docs); the
/// [`Cause::key`] strings are the stable names used in JSON reports and
/// histograms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Cause {
    /// Call through a computed property read that no read hint recovered.
    DynamicRead,
    /// Callee installed by a dynamic property write that \[DPW\] failed to
    /// apply (the write hint exists).
    DynamicWrite,
    /// An `eval`-built API near the edge is invisible to the static
    /// subset.
    EvalApi,
    /// The callee's module is only loadable through a dynamic `require`.
    DynamicRequire,
    /// The computed key came from a caller-supplied parameter — it was the
    /// proxy `p*` during forced execution, so no concrete hint exists.
    HigherOrderProxy,
    /// The callee was never forced-executed (worklist budget or coverage
    /// gap), so no hint could mention it.
    BudgetExhausted,
    /// No triage rule matched.
    Unknown,
}

impl Cause {
    /// The stable report/histogram name of this cause.
    #[must_use]
    pub fn key(self) -> &'static str {
        match self {
            Cause::DynamicRead => "dynamic-read",
            Cause::DynamicWrite => "dynamic-write",
            Cause::EvalApi => "eval-api",
            Cause::DynamicRequire => "dynamic-require",
            Cause::HigherOrderProxy => "higher-order-proxy",
            Cause::BudgetExhausted => "budget-exhausted",
            Cause::Unknown => "unknown",
        }
    }

    /// Every cause, in a fixed presentation order (histograms list all of
    /// them so reports from different projects align).
    #[must_use]
    pub fn all() -> [Cause; 7] {
        [
            Cause::DynamicRead,
            Cause::DynamicWrite,
            Cause::EvalApi,
            Cause::DynamicRequire,
            Cause::HigherOrderProxy,
            Cause::BudgetExhausted,
            Cause::Unknown,
        ]
    }
}

/// One triaged missed edge: a dynamic call edge absent from the extended
/// (hint-augmented) call graph, with its classified root cause.
#[derive(Debug, Clone)]
pub struct MissedEdge {
    /// Call-site location.
    pub site: Loc,
    /// Callee definition location.
    pub callee: Loc,
    /// `path:line:col` rendering of the site.
    pub site_display: String,
    /// `path:line:col` rendering of the callee.
    pub callee_display: String,
    /// Classified root cause.
    pub cause: Cause,
    /// Whether a hint already names the callee for this edge — `true`
    /// means the extended analysis had the information and still missed,
    /// i.e. an unsoundness regression rather than a documented limit.
    pub hint_covered: bool,
    /// Human-readable one-line explanation.
    pub detail: String,
}

impl MissedEdge {
    /// Serializes the edge for the deterministic JSON report.
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("site", Json::Str(self.site_display.clone())),
            ("callee", Json::Str(self.callee_display.clone())),
            ("cause", Json::Str(self.cause.key().to_string())),
            ("hint_covered", Json::Bool(self.hint_covered)),
            ("detail", Json::Str(self.detail.clone())),
        ])
    }
}

/// A computed-member call site, as found by the AST scan.
struct ComputedSite {
    /// Location of the member expression (the key of `H_R` read hints).
    member_loc: Loc,
    /// Whether the key expression references an enclosing function
    /// parameter.
    param_dependent: bool,
}

/// Everything the classifier needs to know about the project's AST.
#[derive(Default)]
struct SiteIndex {
    /// Call-expression location → computed-site facts.
    computed: BTreeMap<Loc, ComputedSite>,
    /// Call-expression location → property name, for static member calls
    /// `E.p(...)` — the shape whose callee cell a \[DPW\]-seeded field
    /// token reaches directly.
    static_member: BTreeMap<Loc, String>,
    /// Files containing a direct `eval(...)` call.
    eval_files: BTreeSet<FileId>,
    /// Files containing a `require(E)` whose argument is not a string
    /// literal.
    dyn_require_files: BTreeSet<FileId>,
    /// Function definition location → node id (for coverage lookups).
    funcs: BTreeMap<Loc, NodeId>,
}

/// Collects identifier names appearing anywhere in a pattern.
fn pattern_names(p: &Pattern, out: &mut BTreeSet<String>) {
    match &p.kind {
        PatternKind::Ident(n) => {
            out.insert(n.clone());
        }
        PatternKind::Array { elems, rest } => {
            for el in elems.iter().flatten() {
                pattern_names(el, out);
            }
            if let Some(r) = rest {
                pattern_names(r, out);
            }
        }
        PatternKind::Object { props, rest } => {
            for pr in props {
                pattern_names(&pr.value, out);
            }
            if let Some(r) = rest {
                pattern_names(r, out);
            }
        }
        PatternKind::Assign { pat, .. } => pattern_names(pat, out),
    }
}

/// Collects identifier names appearing anywhere in an expression.
struct IdentCollector(BTreeSet<String>);

impl Visit for IdentCollector {
    fn visit_expr(&mut self, e: &Expr) {
        if let ExprKind::Ident(n) = &e.kind {
            self.0.insert(n.clone());
        }
        walk_expr(self, e);
    }
}

/// The AST scan behind [`SiteIndex`]: walks one module tracking the
/// enclosing functions' parameter names.
struct IndexBuilder<'a> {
    sm: &'a SourceMap,
    file: FileId,
    params: Vec<BTreeSet<String>>,
    out: &'a mut SiteIndex,
}

impl Visit for IndexBuilder<'_> {
    fn visit_function(&mut self, f: &Function) {
        let mut names = BTreeSet::new();
        for p in &f.params {
            pattern_names(&p.pat, &mut names);
        }
        if let Some(r) = &f.rest {
            pattern_names(r, &mut names);
        }
        self.params.push(names);
        walk_function(self, f);
        self.params.pop();
    }

    fn visit_expr(&mut self, e: &Expr) {
        if let ExprKind::Call { callee, args, .. } = &e.kind {
            let cu = callee.unparen();
            match &cu.kind {
                ExprKind::Member {
                    prop: MemberProp::Computed(k),
                    ..
                } => {
                    let mut idents = IdentCollector(BTreeSet::new());
                    idents.visit_expr(k);
                    let param_dependent = idents
                        .0
                        .iter()
                        .any(|n| self.params.iter().any(|scope| scope.contains(n)));
                    self.out.computed.insert(
                        self.sm.loc(e.span),
                        ComputedSite {
                            member_loc: self.sm.loc(cu.span),
                            param_dependent,
                        },
                    );
                }
                ExprKind::Member {
                    prop: MemberProp::Static(name),
                    ..
                } => {
                    self.out
                        .static_member
                        .insert(self.sm.loc(e.span), name.clone());
                }
                ExprKind::Ident(n) if n == "eval" => {
                    self.out.eval_files.insert(self.file);
                }
                ExprKind::Ident(n) if n == "require" => {
                    let literal = args
                        .first()
                        .filter(|a| !a.spread)
                        .and_then(|a| a.expr.as_str_lit());
                    if literal.is_none() {
                        self.out.dyn_require_files.insert(self.file);
                    }
                }
                _ => {}
            }
        }
        walk_expr(self, e);
    }
}

fn build_index(parsed: &ParsedProject) -> SiteIndex {
    let mut idx = SiteIndex::default();
    for (i, module) in parsed.modules.iter().enumerate() {
        let file = FileId(i as u32);
        let mut b = IndexBuilder {
            sm: &parsed.source_map,
            file,
            params: Vec::new(),
            out: &mut idx,
        };
        b.visit_module(module);
        let mut fc = FunctionCollector::default();
        fc.visit_module(module);
        for (id, span, _) in fc.functions {
            idx.funcs.insert(parsed.source_map.loc(span), id);
        }
    }
    idx
}

/// Classifies every missed edge (see the module docs for the precedence
/// chain). The result is ordered like `missed` — i.e. by `(site, callee)`
/// location — so reports are deterministic.
#[must_use]
pub fn triage(
    parsed: &ParsedProject,
    hints: &Hints,
    approx: &ApproxResult,
    extended: &CallGraph,
    missed: &BTreeSet<(Loc, Loc)>,
) -> Vec<MissedEdge> {
    let _span = aji_obs::span("oracle-triage");
    let idx = build_index(parsed);
    let sm = &parsed.source_map;

    // Dynamic-write values: callee location → the (first) write hint that
    // installed it. BTreeSet iteration makes "first" deterministic.
    let mut write_values: BTreeMap<Loc, &WriteHint> = BTreeMap::new();
    for w in &hints.writes {
        write_values.entry(w.value).or_insert(w);
    }

    let mut out = Vec::with_capacity(missed.len());
    for &(site, callee) in missed {
        let (cause, hint_covered, detail) =
            classify(site, callee, &idx, hints, approx, extended, &write_values, sm);
        out.push(MissedEdge {
            site,
            callee,
            site_display: sm.display_loc(site),
            callee_display: sm.display_loc(callee),
            cause,
            hint_covered,
            detail,
        });
        aji_obs::counter_add(&format!("oracle.cause.{}", cause.key()), 1);
    }
    out
}

#[allow(clippy::too_many_arguments)] // internal helper of `triage`
fn classify(
    site: Loc,
    callee: Loc,
    idx: &SiteIndex,
    hints: &Hints,
    approx: &ApproxResult,
    extended: &CallGraph,
    write_values: &BTreeMap<Loc, &WriteHint>,
    sm: &SourceMap,
) -> (Cause, bool, String) {
    // 1. Computed-member call sites: read-side causes.
    if let Some(cs) = idx.computed.get(&site) {
        let read_covered = hints
            .reads
            .get(&cs.member_loc)
            .is_some_and(|targets| targets.contains(&callee));
        if read_covered {
            return (
                Cause::DynamicRead,
                true,
                format!(
                    "a read hint at {} names this callee but [DPR] did not land the edge",
                    sm.display_loc(cs.member_loc)
                ),
            );
        }
        if cs.param_dependent {
            return (
                Cause::HigherOrderProxy,
                false,
                "the computed key comes from a caller-supplied parameter, so forced \
                 execution only saw the proxy p*"
                    .to_string(),
            );
        }
        if hints.proxy_reads.contains_key(&cs.member_loc) {
            return (
                Cause::HigherOrderProxy,
                false,
                "forced execution read this key off the proxy; only the §6 proxy-read \
                 extension could recover it"
                    .to_string(),
            );
        }
        return (
            Cause::DynamicRead,
            false,
            "computed property read with no recovering read hint".to_string(),
        );
    }

    // 2. Write-side cause: the callee is a recorded dynamic-write value.
    // The edge counts as hint-covered (a [DPW] regression) only when the
    // call site is a static member call of the written property — the
    // shape whose callee cell the [DPW]-seeded field token reaches.
    // Indirect consumption (a computed read into a local, a re-export)
    // is a read-side limitation, not a write-hint failure.
    if let Some(w) = write_values.get(&callee) {
        let matching = idx.static_member.get(&site).and_then(|p| {
            hints
                .writes
                .iter()
                .find(|w| w.value == callee && &w.prop == p)
        });
        if let Some(w) = matching {
            return (
                Cause::DynamicWrite,
                true,
                format!(
                    "callee was installed by a dynamic write of '{}' on {} and the site \
                     calls '.{}' statically; [DPW] should recover this edge",
                    w.prop,
                    sm.display_loc(w.obj),
                    w.prop
                ),
            );
        }
        return (
            Cause::DynamicWrite,
            false,
            format!(
                "callee was installed by a dynamic write of '{}' on {} but is consumed \
                 through an indirect or computed read the static subset cannot resolve",
                w.prop,
                sm.display_loc(w.obj)
            ),
        );
    }

    // 3. eval-built APIs.
    if idx.eval_files.contains(&site.file) || idx.eval_files.contains(&callee.file) {
        return (
            Cause::EvalApi,
            false,
            "an eval-built API in this file is invisible to the static subset".to_string(),
        );
    }

    // 4. Dynamic require / unreachable module.
    if idx.dyn_require_files.contains(&site.file) {
        return (
            Cause::DynamicRequire,
            false,
            "the site's file loads modules through a dynamic require".to_string(),
        );
    }
    if !extended.reachable_modules.contains(&callee.file) {
        return (
            Cause::DynamicRequire,
            false,
            "the callee's module is not reachable in the extended call graph".to_string(),
        );
    }

    // 5. Forced-execution coverage.
    match idx.funcs.get(&callee) {
        Some(id) if !approx.visited.contains(id) => (
            Cause::BudgetExhausted,
            false,
            format!(
                "callee was never forced-executed (coverage {}/{}, {} worklist items aborted)",
                approx.stats.functions_visited,
                approx.stats.functions_total,
                approx.stats.items_aborted
            ),
        ),
        _ => (
            Cause::Unknown,
            false,
            "no triage rule matched".to_string(),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aji_ast::Project;

    fn parse(src: &str) -> ParsedProject {
        let mut p = Project::new("t");
        p.add_file("index.js", src);
        aji_parser::parse_project(&p).unwrap()
    }

    #[test]
    fn cause_keys_are_unique_and_stable() {
        let keys: BTreeSet<&str> = Cause::all().iter().map(|c| c.key()).collect();
        assert_eq!(keys.len(), Cause::all().len());
        assert!(keys.contains("dynamic-write") && keys.contains("higher-order-proxy"));
    }

    #[test]
    fn index_finds_computed_sites_eval_and_dynamic_require() {
        let parsed = parse(
            r#"function call(obj, name) { return obj[name](); }
var fixed = { k1: function () { return 1; } };
fixed['k' + 1]();
eval('1');
function pick() { return './x'; }
require(pick());
"#,
        );
        let idx = build_index(&parsed);
        assert_eq!(idx.computed.len(), 2, "both computed call sites indexed");
        assert!(
            idx.computed.values().any(|c| c.param_dependent),
            "obj[name]() key comes from a parameter"
        );
        assert!(
            idx.computed.values().any(|c| !c.param_dependent),
            "fixed['k' + 1]() key does not"
        );
        assert!(idx.eval_files.contains(&FileId(0)));
        assert!(idx.dyn_require_files.contains(&FileId(0)));
        assert!(!idx.funcs.is_empty(), "function locations collected");
    }

    #[test]
    fn static_member_calls_are_indexed_by_property() {
        let parsed = parse("var o = { m: function () { return 1; } };\no.m();\n");
        let idx = build_index(&parsed);
        assert!(idx.computed.is_empty());
        assert_eq!(
            idx.static_member.values().collect::<Vec<_>>(),
            vec![&"m".to_string()]
        );
    }

    #[test]
    fn literal_require_is_not_dynamic() {
        let parsed = parse("var x = require('./lib');\n");
        let idx = build_index(&parsed);
        assert!(idx.dyn_require_files.is_empty());
    }
}
