//! Differential soundness oracle for the *aji* reproduction.
//!
//! The paper's claim is quantitative: approximate interpretation recovers
//! most of the call edges static analysis misses on dynamic JavaScript
//! idioms. This crate is the apparatus that *checks* that claim edge by
//! edge, explains every residual miss, and hunts for regressions:
//!
//! * [`run_oracle`] / [`run_oracle_corpus`] — the **differential
//!   harness**: dynamic call graph (concrete interpreter tracer) vs.
//!   static call graphs with and without hints, intersected into missed /
//!   recovered / spurious edge sets with per-project and per-corpus
//!   recall ([`EdgeDiff`], [`CorpusOracle`]).
//! * [`triage()`] — the **root-cause pass**: every missed edge classified
//!   by inspecting the AST and the hint sets ([`Cause`]: dynamic read,
//!   dynamic write, eval-built API, dynamic require, higher-order proxy,
//!   budget exhaustion), with a per-project cause histogram.
//! * [`triage_spurious()`] — the **precision-side mirror**: every
//!   spurious edge (extended-graph edge at a dynamically exercised site
//!   the run never took) classified against the static models that
//!   introduced it ([`SpuriousCause`]: listener model, callback model,
//!   `.call`/`.apply` dispatch, baseline vs. hint-only
//!   over-approximation), with its own histogram in the JSON report.
//! * [`run_fuzz`] — the **soundness fuzzer**: a loop-until-dry over
//!   seeded generator configs, flagging any dynamic edge the
//!   hint-augmented analysis misses *despite a hint naming the callee*
//!   and shrinking each finding to a minimal replayable reproducer with
//!   [`aji_support::check::shrink_choices`].
//!
//! The `aji-oracle` binary fronts all three (`--patterns` for the
//! differential run over the hand-written pattern corpus, the fuzzer by
//! default); its JSON report is byte-identical across runs and thread
//! counts. See EXPERIMENTS.md ("Soundness oracle") for how to read the
//! output, and `DESIGN.md` at the repository root for where the oracle
//! sits in the system inventory and which guarantees it underwrites.
//!
//! # Example
//!
//! ```
//! use aji_oracle::{run_fuzz, FuzzOptions};
//!
//! let report = run_fuzz(&FuzzOptions {
//!     cases: 4,
//!     ..FuzzOptions::default()
//! });
//! // A healthy build has no hint-covered misses: the fuzzer comes back
//! // clean (fuzz findings are regressions, not expected behaviour).
//! assert!(report.clean(), "{}", report.summary_text());
//! assert_eq!(report.cases_run, 4);
//! ```

#![warn(missing_docs)]

pub mod diff;
pub mod fuzz;
pub mod spurious;
pub mod triage;

pub use diff::{
    run_oracle, run_oracle_corpus, run_oracle_parsed, CorpusOracle, EdgeDiff, OracleOptions,
    ProjectOracle,
};
pub use fuzz::{case_config, case_seed, run_fuzz, Finding, FuzzOptions, FuzzReport, Reproducer};
pub use spurious::{triage_spurious, SpuriousCause, SpuriousEdge};
pub use triage::{triage, Cause, MissedEdge};
