//! Fine-grained dataflow tests for the static analysis: each test checks
//! that one flow construct produces (or correctly does not produce) call
//! edges.

use aji_ast::Project;
use aji_pta::{analyze, Analysis, AnalysisOptions};

fn analyze_src(src: &str) -> Analysis {
    let mut p = Project::new("t");
    p.add_file("index.js", src);
    analyze(&p, None, &AnalysisOptions::baseline()).expect("analyze")
}

fn has_edge(a: &Analysis, site_line: u32, callee_line: u32) -> bool {
    a.call_graph
        .edges
        .iter()
        .any(|(cs, f)| cs.line == site_line && f.line == callee_line)
}

#[test]
fn conditional_expression_flows_both_arms() {
    let a = analyze_src(
        "function t() {}\n\
         function f() {}\n\
         var pick = cond ? t : f;\n\
         pick();",
    );
    assert!(has_edge(&a, 4, 1));
    assert!(has_edge(&a, 4, 2));
}

#[test]
fn logical_or_default_pattern() {
    let a = analyze_src(
        "function dflt() {}\n\
         var f = provided || dflt;\n\
         f();",
    );
    assert!(has_edge(&a, 3, 1));
}

#[test]
fn sequence_expression_takes_last() {
    let a = analyze_src(
        "function a() {}\n\
         function b() {}\n\
         var f = (a, b);\n\
         f();",
    );
    assert!(has_edge(&a, 4, 2));
    assert!(!has_edge(&a, 4, 1));
}

#[test]
fn nested_closure_capture() {
    let a = analyze_src(
        "function outer() {\n\
         var secret = function hidden() {};\n\
         return function middle() {\n\
         return function inner() {\n\
         secret();\n\
         };\n\
         };\n\
         }\n\
         outer()()();",
    );
    assert!(has_edge(&a, 5, 2), "edges: {:?}", a.call_graph.edges);
}

#[test]
fn arguments_object_flow() {
    let a = analyze_src(
        "function invokeFirst() {\n\
         var f = arguments[0];\n\
         f();\n\
         }\n\
         invokeFirst(function cb() {});",
    );
    // arguments[0] is a dynamic read — baseline misses it, which is the
    // correct baseline behavior...
    assert!(!has_edge(&a, 3, 5));
    // ...but the call to invokeFirst resolves.
    assert!(has_edge(&a, 5, 1));
}

#[test]
fn rest_parameter_elements_flow() {
    let a = analyze_src(
        "function runAll(...fns) {\n\
         fns.forEach(function(f) { f(); });\n\
         }\n\
         runAll(function one() {}, function two() {});",
    );
    assert!(has_edge(&a, 2, 4), "edges: {:?}", a.call_graph.edges);
}

#[test]
fn default_parameter_value_flows() {
    let a = analyze_src(
        "function fallback() {}\n\
         function run(f = fallback) {\n\
         f();\n\
         }\n\
         run();",
    );
    assert!(has_edge(&a, 3, 1));
}

#[test]
fn destructured_parameter_property() {
    let a = analyze_src(
        "function run({ handler }) {\n\
         handler();\n\
         }\n\
         run({ handler: function h() {} });",
    );
    assert!(has_edge(&a, 2, 4), "edges: {:?}", a.call_graph.edges);
}

#[test]
fn array_destructuring_elements() {
    let a = analyze_src(
        "var [f, g] = [function a() {}, function b() {}];\n\
         f();\n\
         g();",
    );
    // Index-insensitive: both sites see both functions (sound, slightly
    // imprecise).
    assert!(has_edge(&a, 2, 1));
    assert!(has_edge(&a, 3, 1));
}

#[test]
fn object_pattern_rest_aliases() {
    let a = analyze_src(
        "var { skip, ...rest } = { skip: 1, kept: function k() {} };\n\
         rest.kept();",
    );
    assert!(has_edge(&a, 2, 1), "edges: {:?}", a.call_graph.edges);
}

#[test]
fn getter_return_value_flows_to_reads() {
    let a = analyze_src(
        "var o = {\n\
         get f() { return function got() {}; }\n\
         };\n\
         var g = o.f;\n\
         g();",
    );
    assert!(has_edge(&a, 5, 2), "edges: {:?}", a.call_graph.edges);
}

#[test]
fn setter_receives_written_values() {
    let a = analyze_src(
        "var o = {\n\
         set f(v) { v(); }\n\
         };\n\
         o.f = function assigned() {};",
    );
    assert!(has_edge(&a, 2, 4), "edges: {:?}", a.call_graph.edges);
}

#[test]
fn this_flows_through_method_calls() {
    let a = analyze_src(
        "var o = {\n\
         target: function t() {},\n\
         run: function() {\n\
         this.target();\n\
         }\n\
         };\n\
         o.run();",
    );
    assert!(has_edge(&a, 4, 2), "edges: {:?}", a.call_graph.edges);
}

#[test]
fn new_binds_this_per_site() {
    let a = analyze_src(
        "function Widget(handler) {\n\
         this.handler = handler;\n\
         }\n\
         Widget.prototype.fire = function() {\n\
         this.handler();\n\
         };\n\
         var w = new Widget(function h() {});\n\
         w.fire();",
    );
    assert!(has_edge(&a, 5, 7), "edges: {:?}", a.call_graph.edges);
    assert!(has_edge(&a, 8, 4));
}

#[test]
fn iife_with_module_pattern() {
    let a = analyze_src(
        "var api = (function() {\n\
         function internal() {}\n\
         return { run: function() { internal(); } };\n\
         })();\n\
         api.run();",
    );
    assert!(has_edge(&a, 5, 3));
    assert!(has_edge(&a, 3, 2));
}

#[test]
fn class_static_method_call() {
    let a = analyze_src(
        "class Registry {\n\
         static create() { return new Registry(); }\n\
         ping() {}\n\
         }\n\
         var r = Registry.create();\n\
         r.ping();",
    );
    assert!(has_edge(&a, 5, 2), "static call, edges: {:?}", a.call_graph.edges);
    assert!(has_edge(&a, 6, 3), "instance via static factory");
}

#[test]
fn class_field_holding_function() {
    let a = analyze_src(
        "class Box {\n\
         cb = function fieldFn() {};\n\
         }\n\
         var b = new Box();\n\
         b.cb();",
    );
    assert!(has_edge(&a, 5, 2), "edges: {:?}", a.call_graph.edges);
}

#[test]
fn throw_does_not_flow_to_catch_baseline() {
    // No exception flow: documented baseline behavior.
    let a = analyze_src(
        "try {\n\
         throw function thrown() {};\n\
         } catch (e) {\n\
         e();\n\
         }",
    );
    assert!(!has_edge(&a, 4, 2));
}

#[test]
fn for_of_over_function_array() {
    let a = analyze_src(
        "var fns = [];\n\
         fns.push(function pushed() {});\n\
         for (const f of fns) {\n\
         f();\n\
         }",
    );
    assert!(has_edge(&a, 4, 2));
}

#[test]
fn module_this_is_exports() {
    let mut p = Project::new("t");
    p.add_file(
        "index.js",
        "this.run = function viaThis() {};\n\
         var me = require('./index');\n\
         me.run();",
    );
    let a = analyze(&p, None, &AnalysisOptions::baseline()).unwrap();
    assert!(has_edge(&a, 3, 1), "edges: {:?}", a.call_graph.edges);
}

#[test]
fn compound_logical_assignment_flows() {
    let a = analyze_src(
        "var handler;\n\
         handler ||= function installed() {};\n\
         handler();",
    );
    assert!(has_edge(&a, 3, 2), "edges: {:?}", a.call_graph.edges);
}

#[test]
fn promise_then_callback_is_invoked() {
    let a = analyze_src(
        "somePromise.then(function onOk() {});",
    );
    assert!(has_edge(&a, 1, 1));
}

#[test]
fn event_listener_registration_counts_as_call() {
    let a = analyze_src(
        "emitter.on('evt', function listener() {});",
    );
    assert!(has_edge(&a, 1, 1));
}

#[test]
fn unreached_callback_in_dependency_is_unresolved() {
    // "Some call sites are unresolved because they involve callbacks in
    // unused library code" (§5).
    let mut p = Project::new("t");
    p.add_file("index.js", "var d = require('dep');");
    p.add_file(
        "node_modules/dep/index.js",
        "exports.helper = function helper(cb) { cb(); };",
    );
    let a = analyze(&p, None, &AnalysisOptions::baseline()).unwrap();
    // cb() never gets a callee.
    let cb_site_resolved = a
        .call_graph
        .site_targets
        .iter()
        .any(|(loc, t)| loc.file.index() == 1 && !t.is_empty());
    assert!(!cb_site_resolved);
}
