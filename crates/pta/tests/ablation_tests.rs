//! Tests for the §4 non-relational ablation and the §6 proxy-read
//! extension.

use aji_approx::{approximate_interpret, ApproxOptions};
use aji_ast::Project;
use aji_pta::{analyze, AnalysisOptions, CgMetrics};

fn project(src: &str) -> Project {
    let mut p = Project::new("t");
    p.add_file("index.js", src);
    p
}

/// The §4 example: three (object, property, value) triples observed at
/// ONE dynamic write site. The relational \[DPW\] rule keeps them apart;
/// the non-relational alternative mixes all objects × all values.
const RELATIONAL_EXAMPLE: &str = "\
var t1 = {};\n\
var t2 = {};\n\
var t3 = {};\n\
function v1() {}\n\
function v2() {}\n\
function v3() {}\n\
var table = [\n\
  [t1, 'p1', v1],\n\
  [t2, 'p2', v2],\n\
  [t3, 'p3', v3]\n\
];\n\
for (var i = 0; i < table.length; i++) {\n\
  var row = table[i];\n\
  row[0][row[1]] = row[2];\n\
}\n\
t1.p1();\n\
t2.p2();\n\
t3.p3();\n";

#[test]
fn relational_dpw_keeps_triples_apart() {
    let p = project(RELATIONAL_EXAMPLE);
    let hints = approximate_interpret(&p, &ApproxOptions::default())
        .unwrap()
        .hints;
    assert_eq!(hints.writes.len(), 3, "hints: {:?}", hints.writes);

    let rel = analyze(&p, Some(&hints), &AnalysisOptions::extended()).unwrap();
    let m = CgMetrics::of(&rel.call_graph);
    // Each of t1.p1() / t2.p2() / t3.p3() resolves to exactly its own
    // function: 3 edges, all monomorphic.
    let call_lines = [16u32, 17, 18];
    for l in call_lines {
        let targets: Vec<u32> = rel
            .call_graph
            .edges
            .iter()
            .filter(|(cs, _)| cs.line == l)
            .map(|(_, f)| f.line)
            .collect();
        assert_eq!(targets.len(), 1, "line {l} targets {targets:?}");
    }
    assert_eq!(m.monomorphic_sites, m.total_sites);
}

#[test]
fn nonrelational_alternative_loses_precision() {
    let p = project(RELATIONAL_EXAMPLE);
    let hints = approximate_interpret(&p, &ApproxOptions::default())
        .unwrap()
        .hints;
    // The ablation needs per-site property names.
    assert!(!hints.write_props.is_empty());

    let non = analyze(&p, Some(&hints), &AnalysisOptions::nonrelational()).unwrap();
    // With all combinations injected, each call site sees all three
    // functions: 9 edges instead of 3, and every call site polymorphic.
    for l in [16u32, 17, 18] {
        let targets: Vec<u32> = non
            .call_graph
            .edges
            .iter()
            .filter(|(cs, _)| cs.line == l)
            .map(|(_, f)| f.line)
            .collect();
        assert_eq!(
            targets.len(),
            3,
            "line {l} should see all three functions, got {targets:?}"
        );
    }
    let m = CgMetrics::of(&non.call_graph);
    assert!(
        m.monomorphic_pct() < 100.0,
        "non-relational mode must create polymorphic sites"
    );
}

#[test]
fn nonrelational_is_still_sound_here() {
    // Both modes find at least the true edges.
    let p = project(RELATIONAL_EXAMPLE);
    let hints = approximate_interpret(&p, &ApproxOptions::default())
        .unwrap()
        .hints;
    let rel = analyze(&p, Some(&hints), &AnalysisOptions::extended()).unwrap();
    let non = analyze(&p, Some(&hints), &AnalysisOptions::nonrelational()).unwrap();
    for e in &rel.call_graph.edges {
        assert!(
            non.call_graph.edges.contains(e),
            "non-relational lost a true edge {e:?}"
        );
    }
}

#[test]
fn proxy_read_extension_recovers_static_like_reads() {
    // `pick` is never called by the module: forced execution runs it with
    // the proxy as argument, so `cfg['handler']` reads from p* — the §6
    // extension records (site, "handler").
    let src = "\
exports.pick = function pick(cfg) {\n\
  var h = cfg['handler'];\n\
  return h;\n\
};\n\
var table = { handler: function theHandler() {} };\n\
var f = exports.pick(table);\n\
f();\n";
    let p = project(src);
    let hints = approximate_interpret(&p, &ApproxOptions::default())
        .unwrap()
        .hints;
    // The module's own call to pick(table) with a concrete object already
    // produces an ordinary read hint, so the extension defers. Remove the
    // concrete call to force the interesting case:
    let src2 = "\
exports.pick = function pick(cfg) {\n\
  var h = cfg['handler'];\n\
  return h;\n\
};\n";
    let mut p2 = Project::new("t2");
    p2.add_file("index.js", src2);
    p2.add_file(
        "app.js",
        "var lib = require('./index');\n\
         var f = lib.pick({ handler: function realHandler() {} });\n\
         f();",
    );
    p2.main = "app.js".to_string();
    let hints2 = approximate_interpret(&p2, &ApproxOptions::default())
        .unwrap()
        .hints;
    let _ = hints;
    // With the app module seeding first, the concrete call may produce an
    // ordinary hint; construct the pure-proxy variant explicitly instead.
    let mut p3 = Project::new("t3");
    p3.add_file("index.js", src2);
    let hints3 = approximate_interpret(&p3, &ApproxOptions::default())
        .unwrap()
        .hints;
    assert!(
        !hints3.proxy_reads.is_empty(),
        "expected §6 proxy-read hints, got {:?}",
        hints3
    );
    // Now analyze an application shape where the static read can resolve.
    let with = AnalysisOptions::with_proxy_reads();
    let analysis = analyze(&p2, Some(&hints3), &with).unwrap();
    let _ = hints2;
    // The read `cfg['handler']` in index.js line 2, treated as `.handler`,
    // lets `f()` in app.js resolve to realHandler (app.js line 2).
    let found = analysis
        .call_graph
        .edges
        .iter()
        .any(|(cs, f)| cs.file.index() == 1 && cs.line == 3 && f.file.index() == 1 && f.line == 2);
    assert!(
        found,
        "proxy-read extension should resolve f(); edges: {:?}",
        analysis.call_graph.edges
    );
}

#[test]
fn proxy_read_extension_defers_to_ordinary_hints() {
    // When a site has ordinary read hints, the extension must not fire
    // (it could only hurt precision, §6).
    let src = "\
var cfg = { handler: function goodHandler() {} };\n\
exports.pick = function pick(c) {\n\
  return c['handler'];\n\
};\n\
var f = exports.pick(cfg);\n\
f();\n";
    let p = project(src);
    let hints = approximate_interpret(&p, &ApproxOptions::default())
        .unwrap()
        .hints;
    // Both an ordinary hint (from the concrete call) and possibly a proxy
    // hint (from the forced call) exist for the same site.
    assert!(!hints.reads.is_empty());
    let a = analyze(&p, Some(&hints), &AnalysisOptions::with_proxy_reads()).unwrap();
    let b = analyze(&p, Some(&hints), &AnalysisOptions::extended()).unwrap();
    assert_eq!(
        a.call_graph.edges, b.call_graph.edges,
        "extension must be inert when ordinary hints exist"
    );
}
