//! Property-based solver tests (ported from proptest to the in-tree
//! `aji-support` check harness): subset-edge propagation equals graph
//! reachability, regardless of the order in which tokens, edges and
//! constraints arrive.

use aji_ast::{FileId, Loc};
use aji_pta::solver::{CellId, Constraint, Solver, Token, TokenData};
use aji_support::check::{property, TestCase};
use aji_support::{prop_assert, prop_assert_eq};
use std::collections::{BTreeSet, HashMap, HashSet, VecDeque};

#[derive(Debug, Clone)]
struct GraphCase {
    n_cells: usize,
    edges: Vec<(usize, usize)>,
    seeds: Vec<(usize, u32)>, // (cell, token line)
}

fn graph_case(tc: &mut TestCase) -> GraphCase {
    let n = tc.int_in(2usize..12);
    let edges = tc.vec_of(0..30, |t| (t.int_in(0..n), t.int_in(0..n)));
    let seeds = tc.vec_of(1..8, |t| (t.int_in(0..n), t.int_in(1u32..6)));
    GraphCase {
        n_cells: n,
        edges,
        seeds,
    }
}

/// Reference reachability: token t seeded at cell c reaches every cell
/// reachable from c through the edge graph.
fn reference(case: &GraphCase) -> HashMap<usize, BTreeSet<u32>> {
    let mut adj: HashMap<usize, Vec<usize>> = HashMap::new();
    for (a, b) in &case.edges {
        adj.entry(*a).or_default().push(*b);
    }
    let mut out: HashMap<usize, BTreeSet<u32>> = HashMap::new();
    for (start, tok) in &case.seeds {
        let mut seen = HashSet::new();
        let mut q = VecDeque::from([*start]);
        while let Some(c) = q.pop_front() {
            if !seen.insert(c) {
                continue;
            }
            out.entry(c).or_default().insert(*tok);
            for nxt in adj.get(&c).into_iter().flatten() {
                q.push_back(*nxt);
            }
        }
    }
    out
}

fn token_lines(s: &Solver, cell: CellId) -> BTreeSet<u32> {
    s.tokens_of(cell)
        .into_iter()
        .map(|t| match s.data(t) {
            TokenData::Obj(l) => l.line,
            _ => 0,
        })
        .collect()
}

#[test]
fn propagation_equals_reachability() {
    property("propagation_equals_reachability")
        .cases(256)
        .run(|tc| {
            let case = graph_case(tc);
            let mut s = Solver::new(vec![]);
            let cells: Vec<CellId> = (0..case.n_cells).map(|_| s.tmp()).collect();
            // Interleave seeding and edges to stress incremental
            // propagation.
            for (i, (a, b)) in case.edges.iter().enumerate() {
                if let Some((c, line)) = case.seeds.get(i % case.seeds.len()) {
                    let t = s.token(TokenData::Obj(Loc::new(FileId(0), *line, 1)));
                    s.add_token(cells[*c], t);
                }
                s.add_edge(cells[*a], cells[*b]);
            }
            for (c, line) in &case.seeds {
                let t = s.token(TokenData::Obj(Loc::new(FileId(0), *line, 1)));
                s.add_token(cells[*c], t);
            }
            s.solve();
            let expected = reference(&case);
            for (i, cell) in cells.iter().enumerate() {
                let got = token_lines(&s, *cell);
                let want = expected.get(&i).cloned().unwrap_or_default();
                prop_assert_eq!(got, want, "cell {} of case {:?}", i, case);
            }
            Ok(())
        });
}

#[test]
fn edge_order_is_irrelevant() {
    property("edge_order_is_irrelevant").cases(256).run(|tc| {
        let case = graph_case(tc);
        // Forward insertion order vs reverse must converge identically.
        let build = |edges: &[(usize, usize)]| {
            let mut s = Solver::new(vec![]);
            let cells: Vec<CellId> = (0..case.n_cells).map(|_| s.tmp()).collect();
            for (c, line) in &case.seeds {
                let t = s.token(TokenData::Obj(Loc::new(FileId(0), *line, 1)));
                s.add_token(cells[*c], t);
            }
            for (a, b) in edges {
                s.add_edge(cells[*a], cells[*b]);
            }
            s.solve();
            cells.iter().map(|c| token_lines(&s, *c)).collect::<Vec<_>>()
        };
        let fwd = build(&case.edges);
        let mut rev = case.edges.clone();
        rev.reverse();
        let bwd = build(&rev);
        prop_assert_eq!(fwd, bwd, "case {:?}", case);
        Ok(())
    });
}

#[test]
fn store_then_load_is_identity() {
    property("store_then_load_is_identity").cases(256).run(|tc| {
        // Storing tokens into a field and loading it back yields the same
        // set, through an arbitrary chain of aliases.
        let lines: BTreeSet<u32> =
            tc.vec_of(1..6, |t| t.int_in(1u32..50)).into_iter().collect();
        let mut s = Solver::new(vec![]);
        let obj_cell = s.tmp();
        let alias = s.tmp();
        let src = s.tmp();
        let dst = s.tmp();
        let obj = s.token(TokenData::Obj(Loc::new(FileId(0), 999, 1)));
        s.add_token(obj_cell, obj);
        s.add_edge(obj_cell, alias);
        let prop_sym = s.interner.intern("p");
        for l in &lines {
            let t = s.token(TokenData::Obj(Loc::new(FileId(0), *l, 1)));
            s.add_token(src, t);
        }
        s.add_constraint(obj_cell, Constraint::Store { prop: prop_sym, src });
        s.add_constraint(alias, Constraint::Load { prop: prop_sym, dst });
        s.solve();
        let got = token_lines(&s, dst);
        prop_assert_eq!(got, lines);
        Ok(())
    });
}

#[test]
fn proto_chain_load_sees_ancestors() {
    property("proto_chain_load_sees_ancestors")
        .cases(256)
        .run(|tc| {
            // A chain t0 -> t1 -> ... -> tn; a property stored on the root
            // is visible from the leaf, regardless of when links are
            // added.
            let depth = tc.int_in(1usize..6);
            let line = tc.int_in(1u32..40);
            let mut s = Solver::new(vec![]);
            let tokens: Vec<Token> = (0..=depth)
                .map(|i| s.token(TokenData::Obj(Loc::new(FileId(0), 100 + i as u32, 1))))
                .collect();
            let leaf_cell = s.tmp();
            let out = s.tmp();
            s.add_token(leaf_cell, tokens[0]);
            let m = s.interner.intern("m");
            // Register the read first (forces replay on link addition).
            s.add_constraint(leaf_cell, Constraint::Load { prop: m, dst: out });
            s.solve();
            // Store on the root.
            let v = s.token(TokenData::Obj(Loc::new(FileId(0), line, 1)));
            let root_field = {
                let root = tokens[depth];
                s.cell(aji_pta::solver::CellKind::Field(root, m))
            };
            s.add_token(root_field, v);
            // Now add the chain links bottom-up.
            for i in 0..depth {
                s.add_proto(tokens[i], tokens[i + 1]);
            }
            s.solve();
            let got = token_lines(&s, out);
            prop_assert!(got.contains(&line), "got {:?} (depth {})", got, depth);
            Ok(())
        });
}
