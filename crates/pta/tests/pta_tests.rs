//! End-to-end static-analysis tests: baseline behavior, hint rules, and
//! the paper's motivating example.

use aji_approx::{approximate_interpret, ApproxOptions, Hints};
use aji_ast::{Loc, Project};
use aji_pta::{analyze, Analysis, AnalysisOptions, CgMetrics};
use std::collections::BTreeSet;

fn project(files: &[(&str, &str)]) -> Project {
    let mut p = Project::new("t");
    for (path, src) in files {
        p.add_file(*path, *src);
    }
    p
}

fn baseline(p: &Project) -> Analysis {
    analyze(p, None, &AnalysisOptions::baseline()).expect("analyze")
}

fn extended(p: &Project) -> (Analysis, Hints) {
    let hints = approximate_interpret(p, &ApproxOptions::default())
        .expect("approx")
        .hints;
    let a = analyze(p, Some(&hints), &AnalysisOptions::extended()).expect("analyze");
    (a, hints)
}

/// Whether the call graph has an edge whose call site is on `site_line`
/// and callee defined on `callee_line` (both in `file_idx`).
fn has_edge(a: &Analysis, site_line: u32, callee_line: u32) -> bool {
    a.call_graph
        .edges
        .iter()
        .any(|(cs, f)| cs.line == site_line && f.line == callee_line)
}

fn edge_lines(a: &Analysis) -> Vec<(u32, u32)> {
    a.call_graph
        .edges
        .iter()
        .map(|(cs, f)| (cs.line, f.line))
        .collect()
}

// ----- baseline behavior -----

#[test]
fn direct_call_edge() {
    let p = project(&[(
        "index.js",
        "function f() { return 1; }\nf();",
    )]);
    let a = baseline(&p);
    assert!(has_edge(&a, 2, 1), "edges: {:?}", edge_lines(&a));
    assert_eq!(CgMetrics::of(&a.call_graph).call_edges, 1);
}

#[test]
fn call_through_variable_and_closure() {
    let p = project(&[(
        "index.js",
        "var g = function inner() { return 2; };\n\
         function wrap() { return g; }\n\
         var h = wrap();\n\
         h();",
    )]);
    let a = baseline(&p);
    assert!(has_edge(&a, 3, 2), "wrap call, edges: {:?}", edge_lines(&a));
    assert!(has_edge(&a, 4, 1), "h() resolves to inner");
}

#[test]
fn method_call_on_object_literal() {
    let p = project(&[(
        "index.js",
        "var o = {\n\
         m: function() { return 1; }\n\
         };\n\
         o.m();",
    )]);
    let a = baseline(&p);
    assert!(has_edge(&a, 4, 2), "edges: {:?}", edge_lines(&a));
}

#[test]
fn callback_flow_through_parameters() {
    let p = project(&[(
        "index.js",
        "function caller(cb) { cb(); }\n\
         caller(function callee() {});",
    )]);
    let a = baseline(&p);
    assert!(has_edge(&a, 1, 2), "cb() targets the passed function");
    assert!(has_edge(&a, 2, 1), "caller itself");
}

#[test]
fn return_value_flow() {
    let p = project(&[(
        "index.js",
        "function make() {\n\
         return function made() { return 1; };\n\
         }\n\
         var f = make();\n\
         f();",
    )]);
    let a = baseline(&p);
    assert!(has_edge(&a, 5, 2), "edges: {:?}", edge_lines(&a));
}

#[test]
fn baseline_misses_dynamic_property_write() {
    let p = project(&[(
        "index.js",
        "var api = {};\n\
         var k = 'run';\n\
         api[k] = function target() {};\n\
         api.run();",
    )]);
    let a = baseline(&p);
    assert!(
        !has_edge(&a, 4, 3),
        "baseline must ignore dynamic writes, edges: {:?}",
        edge_lines(&a)
    );
}

#[test]
fn extended_recovers_dynamic_property_write() {
    let p = project(&[(
        "index.js",
        "var api = {};\n\
         var k = 'run';\n\
         api[k] = function target() {};\n\
         api.run();",
    )]);
    let (a, hints) = extended(&p);
    assert!(!hints.writes.is_empty(), "hints: {hints:?}");
    assert!(
        has_edge(&a, 4, 3),
        "[DPW] must recover the edge, edges: {:?}",
        edge_lines(&a)
    );
}

#[test]
fn extended_recovers_dynamic_property_read() {
    let p = project(&[(
        "index.js",
        "var table = {\n\
         handler: function h() { return 1; }\n\
         };\n\
         var k = 'handler';\n\
         var f = table[k];\n\
         f();",
    )]);
    let b = baseline(&p);
    assert!(!has_edge(&b, 6, 2));
    let (a, hints) = extended(&p);
    assert!(!hints.reads.is_empty());
    assert!(has_edge(&a, 6, 2), "edges: {:?}", edge_lines(&a));
}

#[test]
fn method_table_loop_pattern() {
    // The motivating pattern: methods installed in a loop.
    let p = project(&[(
        "index.js",
        "var app = {};\n\
         ['get', 'post', 'put'].forEach(function(method) {\n\
         app[method] = function handler(path) { return path; };\n\
         });\n\
         app.get('/');\n\
         app.post('/x');",
    )]);
    let b = baseline(&p);
    assert!(!has_edge(&b, 5, 3));
    let (a, _) = extended(&p);
    assert!(has_edge(&a, 5, 3), "app.get, edges: {:?}", edge_lines(&a));
    assert!(has_edge(&a, 6, 3), "app.post");
}

// ----- modules -----

#[test]
fn require_resolves_exports() {
    let p = project(&[
        (
            "index.js",
            "var lib = require('./lib');\nlib.go();",
        ),
        (
            "lib.js",
            "exports.go = function go() { return 1; };",
        ),
    ]);
    let a = baseline(&p);
    // Edge from index.js line 2 to lib.js line 1.
    let found = a.call_graph.edges.iter().any(|(cs, f)| {
        cs.file.index() == 0 && cs.line == 2 && f.file.index() == 1 && f.line == 1
    });
    assert!(found, "edges: {:?}", a.call_graph.edges);
}

#[test]
fn module_exports_rebinding_flows() {
    let p = project(&[
        ("index.js", "var f = require('./f');\nf();"),
        ("f.js", "module.exports = function main() { return 1; };"),
    ]);
    let a = baseline(&p);
    let found = a
        .call_graph
        .edges
        .iter()
        .any(|(cs, f)| cs.line == 2 && f.file.index() == 1);
    assert!(found, "edges: {:?}", a.call_graph.edges);
}

#[test]
fn node_modules_package_resolution() {
    let p = project(&[
        ("index.js", "var dep = require('dep');\ndep.fn();"),
        (
            "node_modules/dep/index.js",
            "exports.fn = function depFn() {};",
        ),
    ]);
    let a = baseline(&p);
    assert!(a
        .call_graph
        .edges
        .iter()
        .any(|(cs, f)| cs.line == 2 && f.file.index() == 1));
}

#[test]
fn dynamic_require_needs_module_hints() {
    let p = project(&[
        (
            "index.js",
            "var which = 'en';\n\
             var lang = require('./langs/' + which);\n\
             lang.hello();",
        ),
        (
            "langs/en.js",
            "exports.hello = function hello() { return 'hi'; };",
        ),
    ]);
    let b = baseline(&p);
    assert_eq!(CgMetrics::of(&b.call_graph).call_edges, 0);
    let (a, hints) = extended(&p);
    assert!(!hints.modules.is_empty());
    assert!(a
        .call_graph
        .edges
        .iter()
        .any(|(cs, f)| cs.line == 3 && f.file.index() == 1));
}

// ----- prototypes, new, classes -----

#[test]
fn prototype_method_resolution() {
    let p = project(&[(
        "index.js",
        "function Animal() {}\n\
         Animal.prototype.speak = function speak() { return 1; };\n\
         var a = new Animal();\n\
         a.speak();",
    )]);
    let a = baseline(&p);
    assert!(has_edge(&a, 3, 1), "constructor call");
    assert!(has_edge(&a, 4, 2), "prototype method, edges: {:?}", edge_lines(&a));
}

#[test]
fn class_method_resolution() {
    let p = project(&[(
        "index.js",
        "class C {\n\
         m() { return 1; }\n\
         }\n\
         var c = new C();\n\
         c.m();",
    )]);
    let a = baseline(&p);
    assert!(has_edge(&a, 5, 2), "edges: {:?}", edge_lines(&a));
}

#[test]
fn class_inheritance_method_lookup() {
    let p = project(&[(
        "index.js",
        "class A {\n\
         base() { return 1; }\n\
         }\n\
         class B extends A {}\n\
         var b = new B();\n\
         b.base();",
    )]);
    let a = baseline(&p);
    assert!(has_edge(&a, 6, 2), "inherited method, edges: {:?}", edge_lines(&a));
}

#[test]
fn util_inherits_pattern_with_hints() {
    // The Node idiom: util.inherits uses Object.create, observable by the
    // pre-analysis.
    let p = project(&[(
        "index.js",
        "function Base() {}\n\
         Base.prototype.hi = function hi() { return 1; };\n\
         function Child() {}\n\
         Child.prototype = Object.create(Base.prototype);\n\
         var c = new Child();\n\
         c.hi();",
    )]);
    let a = baseline(&p);
    // Even the baseline handles this (Object.create is modeled).
    assert!(has_edge(&a, 6, 2), "edges: {:?}", edge_lines(&a));
}

// ----- call/apply/bind -----

#[test]
fn dot_call_and_apply() {
    let p = project(&[(
        "index.js",
        "function f(x) { return x; }\n\
         f.call(null, 1);\n\
         f.apply(null, [2]);",
    )]);
    let a = baseline(&p);
    assert!(has_edge(&a, 2, 1), "call, edges: {:?}", edge_lines(&a));
    assert!(has_edge(&a, 3, 1), "apply");
}

#[test]
fn bound_functions_keep_identity() {
    let p = project(&[(
        "index.js",
        "function f() { return this; }\n\
         var b = f.bind({});\n\
         b();",
    )]);
    let a = baseline(&p);
    assert!(has_edge(&a, 3, 1), "edges: {:?}", edge_lines(&a));
}

// ----- array/iteration models -----

#[test]
fn foreach_callback_edges() {
    let p = project(&[(
        "index.js",
        "[1, 2].forEach(function cb(x) { use(x); });",
    )]);
    let a = baseline(&p);
    assert!(has_edge(&a, 1, 1), "forEach invokes its callback");
}

#[test]
fn map_result_elements() {
    let p = project(&[(
        "index.js",
        "var fs = [function a() {}].map(function(f) { return f; });\n\
         var g = fs.pop();\n\
         g();",
    )]);
    let a = baseline(&p);
    assert!(has_edge(&a, 3, 1), "edges: {:?}", edge_lines(&a));
}

#[test]
fn array_elements_through_for_of() {
    let p = project(&[(
        "index.js",
        "var fns = [function one() {}, function two() {}];\n\
         for (var f of fns) {\n\
         f();\n\
         }",
    )]);
    let a = baseline(&p);
    assert!(has_edge(&a, 3, 1));
}

#[test]
fn push_then_iterate() {
    let p = project(&[(
        "index.js",
        "var handlers = [];\n\
         handlers.push(function h() {});\n\
         handlers.forEach(function(f) { f(); });",
    )]);
    let a = baseline(&p);
    assert!(has_edge(&a, 3, 2), "edges: {:?}", edge_lines(&a));
}

// ----- metrics -----

#[test]
fn metrics_shape() {
    let p = project(&[(
        "index.js",
        "function a() {}\nfunction b() {}\na();\nunknownFn();",
    )]);
    let m = CgMetrics::of(&baseline(&p).call_graph);
    assert_eq!(m.total_functions, 2);
    assert_eq!(m.call_edges, 1);
    assert_eq!(m.total_sites, 2);
    assert_eq!(m.resolved_sites, 1);
    assert!((m.resolved_pct() - 50.0).abs() < 1e-9);
}

#[test]
fn reachability_from_main_package_only() {
    let p = project(&[
        ("index.js", "var d = require('dep');\nd.used();"),
        (
            "node_modules/dep/index.js",
            "exports.used = function used() {};\n\
             exports.unused = function unused() { helper(); };\n\
             function helper() {}",
        ),
    ]);
    let a = baseline(&p);
    let m = CgMetrics::of(&a.call_graph);
    // used() is reachable; unused/helper are not (helper is only called
    // from unused, which nobody calls).
    assert_eq!(m.reachable_functions, 1, "cg: {:?}", a.call_graph.reachable_functions);
    assert_eq!(m.total_functions, 3);
}

// ----- the motivating example (Figure 1) -----

fn express_like_project() -> Project {
    let mut p = Project::new("hello-express");
    p.add_file(
        "index.js",
        r#"const express = require('express');
const app = express();
app.get('/', function handler(req, res) {
  res.send('Hello world!');
});
var server = app.listen(8080);
"#,
    );
    p.add_file(
        "node_modules/express/index.js",
        r#"var mixin = require('merge-descriptors');
var EventEmitter = require('events');
var proto = require('./application');
exports = module.exports = createApplication;
function createApplication() {
  var app = function(req, res, next) {
    app.handle(req, res, next);
  };
  mixin(app, EventEmitter.prototype, false);
  mixin(app, proto, false);
  return app;
}
"#,
    );
    p.add_file(
        "node_modules/merge-descriptors/index.js",
        r#"module.exports = merge;
function merge(dest, src, redefine) {
  Object.getOwnPropertyNames(src).forEach(function forOwnPropertyName(name) {
    var descriptor = Object.getOwnPropertyDescriptor(src, name);
    Object.defineProperty(dest, name, descriptor);
  });
  return dest;
}
"#,
    );
    p.add_file(
        "node_modules/express/application.js",
        r#"var methods = require('methods');
var http = require('http');
var app = exports = module.exports = {};
methods.forEach(function(method) {
  app[method] = function(path) {
    return this;
  };
});
app.handle = function(req, res, next) {};
app.listen = function listen() {
  var server = http.createServer(this);
  return server;
};
"#,
    );
    p.add_file(
        "node_modules/methods/index.js",
        "module.exports = ['get', 'post', 'put'];\n",
    );
    p
}

#[test]
fn motivating_example_baseline_misses_api_calls() {
    let p = express_like_project();
    let a = baseline(&p);
    // app.get (index.js line 3) must NOT resolve to the dynamic method
    // (application.js line 5).
    let app_get_edge = a.call_graph.edges.iter().any(|(cs, f)| {
        cs.file.index() == 0 && cs.line == 3 && f.file.index() == 3 && f.line == 5
    });
    assert!(!app_get_edge);
    // app.listen resolves even in the baseline? No: listen is installed
    // via Object.defineProperty inside merge, which the baseline ignores.
    let app_listen_edge = a.call_graph.edges.iter().any(|(cs, f)| {
        cs.file.index() == 0 && cs.line == 6 && f.file.index() == 3 && f.line == 10
    });
    assert!(!app_listen_edge);
}

#[test]
fn motivating_example_extended_finds_api_calls() {
    let p = express_like_project();
    let (a, hints) = extended(&p);
    assert!(!hints.writes.is_empty(), "expected write hints");
    // The famous edges: app.get → the dynamically installed method, and
    // app.listen → the listen function copied by the mixin.
    let app_get_edge = a.call_graph.edges.iter().any(|(cs, f)| {
        cs.file.index() == 0 && cs.line == 3 && f.file.index() == 3 && f.line == 5
    });
    assert!(
        app_get_edge,
        "app.get edge missing; hints: {} writes, edges: {:?}",
        hints.writes.len(),
        a.call_graph.edges
    );
    let app_listen_edge = a.call_graph.edges.iter().any(|(cs, f)| {
        cs.file.index() == 0 && cs.line == 6 && f.file.index() == 3 && f.line == 10
    });
    assert!(app_listen_edge, "app.listen edge missing");
}

#[test]
fn motivating_example_headline_metrics_improve() {
    let p = express_like_project();
    let b = CgMetrics::of(&baseline(&p).call_graph);
    let (x, _) = extended(&p);
    let e = CgMetrics::of(&x.call_graph);
    assert!(e.call_edges > b.call_edges);
    assert!(e.reachable_functions >= b.reachable_functions);
    assert!(e.resolved_pct() >= b.resolved_pct());
}

// ----- recall / precision vs dynamic call graphs -----

#[test]
fn recall_improves_with_hints() {
    use aji_interp::{DynCallGraph, Interp, InterpOptions};
    use std::cell::RefCell;
    use std::rc::Rc;

    let mut p = project(&[(
        "index.js",
        "var api = {};\n\
         ['start', 'stop'].forEach(function(m) {\n\
         api[m] = function action() { return m; };\n\
         });\n\
         api.start();\n\
         api.stop();",
    )]);
    p.test_driver = Some("index.js".to_string());

    // Dynamic call graph from concrete execution.
    let dyncg = Rc::new(RefCell::new(DynCallGraph::new()));
    let mut interp =
        Interp::with_options(&p, InterpOptions::default(), Box::new(dyncg.clone())).unwrap();
    interp.run_module("index.js").unwrap();
    let dyn_edges: BTreeSet<(Loc, Loc)> = dyncg
        .borrow()
        .edges
        .iter()
        .map(|e| (e.call_site, e.callee))
        .collect();
    assert!(!dyn_edges.is_empty());

    let b = baseline(&p);
    let (e, _) = extended(&p);
    let acc_b = aji_pta::Accuracy::compare(&b.call_graph, &dyn_edges);
    let acc_e = aji_pta::Accuracy::compare(&e.call_graph, &dyn_edges);
    assert!(
        acc_e.recall_pct() > acc_b.recall_pct(),
        "baseline {}%, extended {}%",
        acc_b.recall_pct(),
        acc_e.recall_pct()
    );
    assert!(acc_e.recall_pct() > 99.0, "extended should be sound here");
}
