//! Call-graph extraction and reachability.

use crate::solver::{Encl, Solver};
use aji_ast::{FileId, Loc, Project};
use std::collections::{BTreeMap, BTreeSet, HashSet};

/// The computed call graph, in terms of source locations (comparable with
/// the dynamic call graphs produced by the interpreter).
#[derive(Debug, Clone, Default)]
pub struct CallGraph {
    /// All call edges (call-site location → callee definition location).
    pub edges: BTreeSet<(Loc, Loc)>,
    /// Per-site callee sets (sites with no callees map to empty sets and
    /// are included so metrics can count unresolved sites).
    pub site_targets: BTreeMap<Loc, BTreeSet<Loc>>,
    /// Function definitions reachable from the top-level code of the main
    /// package's modules.
    pub reachable_functions: BTreeSet<Loc>,
    /// All function definitions in the project.
    pub all_functions: BTreeSet<Loc>,
    /// Modules loaded (directly or transitively) from reachable code.
    pub reachable_modules: BTreeSet<FileId>,
}

impl CallGraph {
    /// Number of call edges (distinct call-site → callee pairs, as in the
    /// paper's "Number of call edges" metric).
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Number of call sites with at least one callee.
    pub fn resolved_sites(&self) -> usize {
        self.site_targets.values().filter(|t| !t.is_empty()).count()
    }

    /// Number of call sites with at most one callee.
    pub fn monomorphic_sites(&self) -> usize {
        self.site_targets.values().filter(|t| t.len() <= 1).count()
    }

    /// Total number of call sites.
    pub fn total_sites(&self) -> usize {
        self.site_targets.len()
    }
}

/// Extracts the call graph and computes reachability from the main
/// package's module top-levels.
pub fn extract(solver: &Solver, project: &Project) -> CallGraph {
    let mut cg = CallGraph::default();

    for f in &solver.funcs {
        cg.all_functions.insert(f.loc);
    }
    for s in &solver.sites {
        cg.site_targets.entry(s.loc).or_default();
    }
    for (site, f) in &solver.call_edges {
        let sloc = solver.sites[*site as usize].loc;
        let floc = solver.funcs[f.0 as usize].loc;
        cg.edges.insert((sloc, floc));
        cg.site_targets.entry(sloc).or_default().insert(floc);
    }

    // Reachability: roots are the main package's module top-levels.
    let mut reachable: HashSet<Encl> = HashSet::new();
    let mut reachable_files: HashSet<FileId> = HashSet::new();
    for (i, file) in project.files.iter().enumerate() {
        if Project::is_main_package_path(&file.path) {
            reachable.insert(Encl::Module(FileId(i as u32)));
            reachable_files.insert(FileId(i as u32));
        }
    }
    // Fixpoint over call and module edges.
    loop {
        let mut changed = false;
        for (site, f) in &solver.call_edges {
            let encl = solver.sites[*site as usize].enclosing;
            if reachable.contains(&encl) {
                changed |= reachable.insert(Encl::Func(*f));
            }
        }
        for (site, file) in &solver.module_edges {
            let encl = solver.sites[*site as usize].enclosing;
            if reachable.contains(&encl) {
                changed |= reachable.insert(Encl::Module(*file));
                changed |= reachable_files.insert(*file);
            }
        }
        if !changed {
            break;
        }
    }
    for (i, f) in solver.funcs.iter().enumerate() {
        if reachable.contains(&Encl::Func(crate::solver::FuncIdx(i as u32))) {
            cg.reachable_functions.insert(f.loc);
        }
    }
    cg.reachable_modules = reachable_files.into_iter().collect();
    cg
}
