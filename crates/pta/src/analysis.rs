//! Top-level analysis driver: parse → resolve scopes → generate
//! constraints → apply hints (\[DPR\]/\[DPW\]/module hints) → solve → extract
//! the call graph.

use crate::callgraph::{extract, CallGraph};
use crate::gen::{generate, GenOutput};
use crate::scopes;
use crate::solver::{CellKind, SolverStats, TokenData};
use aji_approx::Hints;
use aji_ast::{Loc, Project};
use std::time::Instant;

/// Which hint rules the analysis applies. The baseline disables all of
/// them; Table 2's `*`-marked row corresponds to write hints only.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AnalysisOptions {
    /// Apply \[DPR\] (read hints).
    pub use_read_hints: bool,
    /// Apply \[DPW\] (write hints).
    pub use_write_hints: bool,
    /// Resolve dynamic `require` through module hints (§3's extension).
    pub use_module_hints: bool,
    /// §4's discussed *non-relational* alternative to \[DPW\]: model each
    /// dynamic write site as static writes `E.p1 = E'' ∧ … ∧ E.pn = E''`
    /// for the observed names. Loses the relational precision of \[DPW\];
    /// provided for the ablation study.
    pub nonrelational_writes: bool,
    /// §6's "unknown function arguments" extension: treat a dynamic read
    /// whose base was the proxy but whose key was a known string as a
    /// static read — only where no ordinary read hints exist.
    pub use_proxy_read_hints: bool,
}

impl AnalysisOptions {
    /// The baseline static analysis: dynamic property accesses ignored.
    pub fn baseline() -> Self {
        AnalysisOptions {
            use_read_hints: false,
            use_write_hints: false,
            use_module_hints: false,
            nonrelational_writes: false,
            use_proxy_read_hints: false,
        }
    }

    /// The extended analysis with the paper's hint rules enabled.
    pub fn extended() -> Self {
        AnalysisOptions {
            use_read_hints: true,
            use_write_hints: true,
            use_module_hints: true,
            nonrelational_writes: false,
            use_proxy_read_hints: false,
        }
    }

    /// The §4 non-relational ablation: write hints replaced by
    /// per-site property-name injection.
    pub fn nonrelational() -> Self {
        AnalysisOptions {
            use_write_hints: false,
            nonrelational_writes: true,
            ..Self::extended()
        }
    }

    /// The extended analysis plus the §6 proxy-read extension.
    pub fn with_proxy_reads() -> Self {
        AnalysisOptions {
            use_proxy_read_hints: true,
            ..Self::extended()
        }
    }

    /// Folds the rule configuration into `h` as one bit per rule — the
    /// cache-key contribution the `aji serve` hint store uses so a solved
    /// call graph is never reused under a different rule set (e.g. an
    /// `AJI_PTA_ABLATE` ablation run must miss a cache warmed without it).
    pub fn fingerprint_into(&self, h: &mut aji_support::Fnv64) {
        let bits = u64::from(self.use_read_hints)
            | u64::from(self.use_write_hints) << 1
            | u64::from(self.use_module_hints) << 2
            | u64::from(self.nonrelational_writes) << 3
            | u64::from(self.use_proxy_read_hints) << 4
            | u64::from(rule_ablated("dpw")) << 5;
        h.write_u64(bits);
    }
}

impl Default for AnalysisOptions {
    fn default() -> Self {
        Self::extended()
    }
}

/// Test-only ablation switch: `true` when the `AJI_PTA_ABLATE`
/// environment variable names `rule` (comma-separated, case-insensitive).
///
/// The soundness oracle's regression test sets `AJI_PTA_ABLATE=dpw` to
/// silently disable the \[DPW\] rule *without* touching
/// [`AnalysisOptions`] — mimicking how a real unsoundness regression
/// would slip in: the configuration still claims write hints are on, but
/// the rule no longer fires. Production paths never set the variable, so
/// the switch is inert outside tests.
#[must_use]
pub fn rule_ablated(rule: &str) -> bool {
    match std::env::var("AJI_PTA_ABLATE") {
        Ok(v) => v.split(',').any(|r| r.trim().eq_ignore_ascii_case(rule)),
        Err(_) => false,
    }
}

/// Result of one static analysis run.
#[derive(Debug)]
pub struct Analysis {
    /// The computed call graph.
    pub call_graph: CallGraph,
    /// Solver statistics.
    pub solver_stats: SolverStats,
    /// Wall-clock analysis time in seconds (excluding parsing).
    pub analysis_seconds: f64,
    /// Number of hints that were actually applied (matched a known site
    /// or token).
    pub hints_applied: usize,
}

/// Runs the static call graph and points-to analysis on a project.
///
/// With `hints == None` (or all hint options disabled) this is the
/// baseline analysis of Figure 3's first five rules; with hints it
/// additionally applies \[DPR\] and \[DPW\].
///
/// Parses the project first; callers that already hold a
/// [`aji_parser::ParsedProject`] — e.g. to run several hint
/// configurations over one parse — should use [`analyze_parsed`].
///
/// # Errors
///
/// Returns a parse error if any project file fails to parse.
pub fn analyze(
    project: &Project,
    hints: Option<&Hints>,
    opts: &AnalysisOptions,
) -> Result<Analysis, aji_parser::ParseError> {
    let parsed = aji_parser::parse_project(project)?;
    Ok(analyze_parsed(project, &parsed, hints, opts))
}

/// [`analyze`] over an already-parsed project.
///
/// Infallible: parse errors are the only failure mode of the analysis,
/// and the caller has already parsed. `parsed` must be the parse of
/// `project` (the project supplies vulnerability annotations and file
/// paths; the AST and source map come from `parsed`).
pub fn analyze_parsed(
    project: &Project,
    parsed: &aji_parser::ParsedProject,
    hints: Option<&Hints>,
    opts: &AnalysisOptions,
) -> Analysis {
    let start = Instant::now();
    let res = {
        let _s = aji_obs::span("resolve-scopes");
        scopes::resolve(&parsed.modules)
    };
    let paths: Vec<String> = project.files.iter().map(|f| f.path.clone()).collect();
    let gen_span = aji_obs::span("generate");
    let GenOutput {
        mut solver,
        dyn_reads,
        dyn_writes,
        funcs_by_loc,
        objs_by_loc,
    } = generate(&parsed.modules, &parsed.source_map, &res, paths);
    drop(gen_span);

    // Apply hints.
    let hint_span = aji_obs::span("apply-hints");
    // Flight-recorder sink, fetched once: one `HintApply` event per rule
    // application, named by the rule and detailed by the property (or
    // location/path) it injected. Hint maps iterate in `BTreeMap` order,
    // so the event stream is deterministic.
    let rec = aji_obs::trace_recorder();
    let mut hints_applied = 0;
    if let Some(h) = hints {
        // Hint locations resolve to function tokens first, then to known
        // (or freshly minted) object allocation-site tokens. Line-0
        // sentinel locations denote module `exports` / `module` objects
        // (see the interpreter's module loader).
        let token_at = |solver: &mut crate::solver::Solver, loc: Loc| {
            if loc.line == 0 {
                return if loc.col == 0 {
                    solver.token(TokenData::Exports(loc.file))
                } else {
                    solver.token(TokenData::ModuleObj(loc.file))
                };
            }
            if let Some(owner) = loc.prototype_owner() {
                if let Some(f) = funcs_by_loc.get(&owner) {
                    return solver.token(TokenData::Proto(*f));
                }
                return solver.token(TokenData::Obj(loc));
            }
            if let Some(f) = funcs_by_loc.get(&loc) {
                solver.token(TokenData::Func(*f))
            } else if let Some(t) = objs_by_loc.get(&loc) {
                *t
            } else {
                solver.token(TokenData::Obj(loc))
            }
        };
        if opts.use_write_hints && !rule_ablated("dpw") {
            // [DPW]: t_{ℓ''} ∈ ⟦t_ℓ.p⟧
            for w in &h.writes {
                let t_obj = token_at(&mut solver, w.obj);
                let t_val = token_at(&mut solver, w.value);
                let prop = solver.interner.intern(&w.prop);
                let field = solver.cell(CellKind::Field(t_obj, prop));
                solver.add_token(field, t_val);
                hints_applied += 1;
                if let Some(rec) = &rec {
                    rec.record(aji_obs::TraceKind::HintApply, "dpw", &w.prop);
                }
            }
        }
        if opts.use_read_hints {
            // [DPR]: t_{ℓ'} ∈ ⟦E[E']⟧
            for (op, locs) in &h.reads {
                let Some((_, cell)) = dyn_reads.get(op) else {
                    continue;
                };
                for l in locs {
                    let t = token_at(&mut solver, *l);
                    solver.add_token(*cell, t);
                    hints_applied += 1;
                    if let Some(rec) = &rec {
                        rec.record(aji_obs::TraceKind::HintApply, "dpr", &l.to_string());
                    }
                }
            }
        }
        if opts.nonrelational_writes {
            // §4's discussed alternative: every observed name at a write
            // site becomes a static write of the site's value expression
            // into that property of *all* base objects.
            for (site, props) in &h.write_props {
                let Some((base, value)) = dyn_writes.get(site) else {
                    continue;
                };
                for p in props {
                    let prop = solver.interner.intern(p);
                    solver.add_constraint(
                        *base,
                        crate::solver::Constraint::Store { prop, src: *value },
                    );
                    hints_applied += 1;
                    if let Some(rec) = &rec {
                        rec.record(aji_obs::TraceKind::HintApply, "nonrel-write", p);
                    }
                }
            }
        }
        if opts.use_proxy_read_hints {
            // §6 extension: only where no ordinary read hints exist.
            for (site, props) in &h.proxy_reads {
                if h.reads.contains_key(site) {
                    continue;
                }
                let Some((base, result)) = dyn_reads.get(site) else {
                    continue;
                };
                for p in props {
                    let prop = solver.interner.intern(p);
                    solver.add_constraint(
                        *base,
                        crate::solver::Constraint::Load { prop, dst: *result },
                    );
                    hints_applied += 1;
                    if let Some(rec) = &rec {
                        rec.record(aji_obs::TraceKind::HintApply, "proxy-read", p);
                    }
                }
            }
        }
        if opts.use_module_hints {
            for (site, paths) in &h.modules {
                hints_applied += paths.len();
                if let Some(rec) = &rec {
                    for p in paths {
                        rec.record(aji_obs::TraceKind::HintApply, "module", p);
                    }
                }
                solver
                    .module_hints
                    .insert(*site, paths.iter().cloned().collect());
            }
        }
    }

    drop(hint_span);

    {
        let _s = aji_obs::span("solve");
        solver.solve();
    }
    let call_graph = {
        let _s = aji_obs::span("extract-cg");
        extract(&solver, project)
    };
    let analysis_seconds = start.elapsed().as_secs_f64();
    aji_obs::counter_add("pta.cells", solver.stats.cells as u64);
    aji_obs::counter_add("pta.tokens", solver.stats.tokens as u64);
    aji_obs::counter_add("pta.call_edges", call_graph.edge_count() as u64);
    aji_obs::counter_add("pta.hints_applied", hints_applied as u64);
    Analysis {
        call_graph,
        solver_stats: solver.stats.clone(),
        analysis_seconds,
        hints_applied,
    }
}
