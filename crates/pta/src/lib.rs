//! Static call-graph and points-to analysis with the approximate-
//! interpretation hint rules — the Jelly stand-in of the *aji*
//! reproduction of *Reducing Static Analysis Unsoundness with Approximate
//! Interpretation* (PLDI 2024).
//!
//! The analysis is a classic subset-based, flow-insensitive and
//! context-insensitive points-to analysis with on-the-fly call graph
//! construction (Figure 3 of the paper):
//!
//! * the **baseline** ignores dynamic property reads and writes — the
//!   unsoundness the paper quantifies;
//! * the **extended** analysis additionally applies rule \[DPR\] (inject the
//!   allocation sites observed at each dynamic read) and \[DPW\] (inject
//!   each observed `(object, property, value)` write triple), using the
//!   hints produced by the `aji-approx` pre-analysis.
//!
//! # Example
//!
//! ```
//! use aji_approx::{approximate_interpret, ApproxOptions};
//! use aji_ast::Project;
//! use aji_pta::{analyze, AnalysisOptions, CgMetrics};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut project = Project::new("demo");
//! project.add_file(
//!     "index.js",
//!     "var api = {};\n\
//!      ['run'].forEach(function(m) { api[m] = function() { return 1; }; });\n\
//!      api.run();",
//! );
//! let baseline = analyze(&project, None, &AnalysisOptions::baseline())?;
//! let hints = approximate_interpret(&project, &ApproxOptions::default())?.hints;
//! let extended = analyze(&project, Some(&hints), &AnalysisOptions::extended())?;
//! // The call `api.run()` is only resolved with hints.
//! assert!(CgMetrics::of(&extended.call_graph).call_edges
//!     > CgMetrics::of(&baseline.call_graph).call_edges);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod analysis;
mod callgraph;
mod gen;
mod metrics;
pub mod scopes;
pub mod solver;

pub use analysis::{analyze, analyze_parsed, rule_ablated, Analysis, AnalysisOptions};
pub use callgraph::CallGraph;
pub use metrics::{Accuracy, CgMetrics};
