//! Constraint generation: walks every module's AST and populates the
//! solver with the subset constraints of Figure 3 (object construction,
//! function definition, calls, static property reads/writes), the module
//! system, and gen-time models for common stdlib method calls.
//!
//! Dynamic property reads/writes generate **no** constraints here — that
//! is the baseline's unsoundness. The hint rules \[DPR\]/\[DPW\] are applied
//! afterwards (see `analysis.rs`) using the site maps this generator
//! records.

use crate::scopes::{Resolution, VarInfo};
use crate::solver::{
    CallSite, CellId, CellKind, Constraint, Encl, FuncIdx, FuncInfo, Solver, Token, TokenData,
};
use aji_ast::ast::*;
use aji_ast::{FileId, Loc, SourceMap};
use std::collections::HashMap;

/// Global names seeded with builtin tokens.
const BUILTIN_GLOBALS: &[&str] = &[
    "Object",
    "Array",
    "Function",
    "String",
    "Number",
    "Boolean",
    "Math",
    "JSON",
    "console",
    "Promise",
    "Symbol",
    "RegExp",
    "Date",
    "Error",
    "TypeError",
    "RangeError",
    "SyntaxError",
    "EvalError",
    "ReferenceError",
    "process",
    "Buffer",
    "parseInt",
    "parseFloat",
    "isNaN",
    "isFinite",
    "eval",
    "setTimeout",
    "setInterval",
    "setImmediate",
    "clearTimeout",
    "clearInterval",
    "queueMicrotask",
    "encodeURIComponent",
    "decodeURIComponent",
];

/// Output of constraint generation.
pub struct GenOutput {
    /// The populated solver (not yet solved).
    pub solver: Solver,
    /// Dynamic property read sites: operation location → (base cell,
    /// result cell). The result cell is the \[DPR\] injection point; the
    /// base cell serves the §6 proxy-read extension.
    pub dyn_reads: HashMap<Loc, (CellId, CellId)>,
    /// Dynamic property write sites: operation location → (base cell,
    /// value cell) — the raw material of the §4 non-relational ablation.
    pub dyn_writes: HashMap<Loc, (CellId, CellId)>,
    /// Function definitions by location (the \[DPW\]/\[DPR\] token lookup).
    pub funcs_by_loc: HashMap<Loc, FuncIdx>,
    /// Object allocation sites by location.
    pub objs_by_loc: HashMap<Loc, Token>,
}

/// Generates constraints for a parsed project.
pub fn generate(
    modules: &[std::rc::Rc<Module>],
    source_map: &SourceMap,
    res: &Resolution,
    paths: Vec<String>,
) -> GenOutput {
    let mut g = Gen {
        solver: Solver::new(paths),
        res,
        sm: source_map,
        file: FileId(0),
        encl: Encl::Module(FileId(0)),
        this_cell: CellId(0),
        dyn_reads: HashMap::new(),
        dyn_writes: HashMap::new(),
        funcs_by_loc: HashMap::new(),
        objs_by_loc: HashMap::new(),
        magic_vars: HashMap::new(),
    };

    // Locate per-module magic vars and seed globals.
    for (i, info) in res.vars.iter().enumerate() {
        match info {
            VarInfo::ModuleMagic(file, name) => {
                g.magic_vars
                    .insert((*file, name.clone()), crate::scopes::VarId(i as u32));
            }
            VarInfo::Global(name) => {
                if BUILTIN_GLOBALS.contains(&name.as_str()) {
                    let sym = g.solver.interner.intern(name);
                    let tok = g.solver.token(TokenData::Builtin(sym));
                    let cell = g
                        .solver
                        .cell(CellKind::Var(crate::scopes::VarId(i as u32)));
                    g.solver.add_token(cell, tok);
                }
            }
            VarInfo::Local(_) => {}
        }
    }

    for (i, m) in modules.iter().enumerate() {
        let file = FileId(i as u32);
        g.file = file;
        g.encl = Encl::Module(file);
        g.this_cell = g.solver.cell(CellKind::ModuleThis(file));

        // Module environment.
        let mobj = g.solver.token(TokenData::ModuleObj(file));
        let exports = g.solver.token(TokenData::Exports(file));
        let exports_sym = g.solver.interner.intern("exports");
        let f = g.solver.cell(CellKind::Field(mobj, exports_sym));
        g.solver.add_token(f, exports);
        g.solver.add_token(g.this_cell, exports);
        for (name, tok) in [("module", Some(mobj)), ("exports", Some(exports))] {
            if let Some(v) = g.magic_vars.get(&(file, name.to_string())) {
                let cell = g.solver.cell(CellKind::Var(*v));
                if let Some(t) = tok {
                    g.solver.add_token(cell, t);
                }
            }
        }
        if let Some(v) = g.magic_vars.get(&(file, "require".to_string())) {
            let sym = g.solver.interner.intern("require");
            let tok = g.solver.token(TokenData::Builtin(sym));
            let cell = g.solver.cell(CellKind::Var(*v));
            g.solver.add_token(cell, tok);
        }

        for s in &m.body {
            g.stmt(s);
        }
    }

    GenOutput {
        solver: g.solver,
        dyn_reads: g.dyn_reads,
        dyn_writes: g.dyn_writes,
        funcs_by_loc: g.funcs_by_loc,
        objs_by_loc: g.objs_by_loc,
    }
}

struct Gen<'a> {
    solver: Solver,
    res: &'a Resolution,
    sm: &'a SourceMap,
    file: FileId,
    encl: Encl,
    this_cell: CellId,
    dyn_reads: HashMap<Loc, (CellId, CellId)>,
    dyn_writes: HashMap<Loc, (CellId, CellId)>,
    funcs_by_loc: HashMap<Loc, FuncIdx>,
    objs_by_loc: HashMap<Loc, Token>,
    magic_vars: HashMap<(FileId, String), crate::scopes::VarId>,
}

impl<'a> Gen<'a> {
    fn loc(&self, span: aji_ast::Span) -> Loc {
        self.sm.loc(span)
    }

    fn expr_cell(&mut self, e: &Expr) -> CellId {
        self.solver.cell(CellKind::Expr(e.id))
    }

    fn var_cell_of(&mut self, node: aji_ast::NodeId) -> Option<CellId> {
        self.res
            .var_of(node)
            .map(|v| self.solver.cell(CellKind::Var(v)))
    }

    fn obj_token(&mut self, loc: Loc) -> Token {
        let t = self.solver.token(TokenData::Obj(loc));
        self.objs_by_loc.insert(loc, t);
        t
    }

    // ----- statements -----

    fn stmt(&mut self, s: &Stmt) {
        match &s.kind {
            StmtKind::Expr(e) => {
                self.expr(e);
            }
            StmtKind::VarDecl(d) => {
                for decl in &d.decls {
                    let init = decl.init.as_ref().map(|e| self.expr(e));
                    if let Some(src) = init {
                        self.bind_pattern(&decl.name, src);
                    }
                }
            }
            StmtKind::FuncDecl(f) => {
                let idx = self.function(f);
                let tok = self.solver.token(TokenData::Func(idx));
                if let Some(v) = self.res.decl_of(f.id) {
                    let cell = self.solver.cell(CellKind::Var(v));
                    self.solver.add_token(cell, tok);
                }
            }
            StmtKind::ClassDecl(c) => {
                let tok = self.class(c);
                if let Some(v) = self.res.decl_of(c.id) {
                    let cell = self.solver.cell(CellKind::Var(v));
                    self.solver.add_token(cell, tok);
                }
            }
            StmtKind::Return(e) => {
                if let Some(e) = e {
                    let c = self.expr(e);
                    if let Encl::Func(f) = self.encl {
                        let r = self.solver.cell(CellKind::Ret(f));
                        self.solver.add_edge(c, r);
                    }
                }
            }
            StmtKind::If { test, cons, alt } => {
                self.expr(test);
                self.stmt(cons);
                if let Some(a) = alt {
                    self.stmt(a);
                }
            }
            StmtKind::While { test, body } => {
                self.expr(test);
                self.stmt(body);
            }
            StmtKind::DoWhile { body, test } => {
                self.stmt(body);
                self.expr(test);
            }
            StmtKind::For {
                init,
                test,
                update,
                body,
            } => {
                match init {
                    Some(ForInit::VarDecl(d)) => {
                        for decl in &d.decls {
                            let init = decl.init.as_ref().map(|e| self.expr(e));
                            if let Some(src) = init {
                                self.bind_pattern(&decl.name, src);
                            }
                        }
                    }
                    Some(ForInit::Expr(e)) => {
                        self.expr(e);
                    }
                    None => {}
                }
                if let Some(t) = test {
                    self.expr(t);
                }
                if let Some(u) = update {
                    self.expr(u);
                }
                self.stmt(body);
            }
            StmtKind::ForIn { head, obj, body } => {
                // Keys are strings: no token flow.
                self.for_head_no_flow(head);
                self.expr(obj);
                self.stmt(body);
            }
            StmtKind::ForOf { head, iter, body } => {
                let it = self.expr(iter);
                let elems = self.solver.tmp();
                let elems_sym = self.solver.elems_sym;
                self.solver.add_constraint(
                    it,
                    Constraint::Load {
                        prop: elems_sym,
                        dst: elems,
                    },
                );
                match head {
                    ForHead::VarDecl { pat, .. } => self.bind_pattern(pat, elems),
                    ForHead::Target(e) => self.assign_into_expr(e, elems),
                }
                self.stmt(body);
            }
            StmtKind::Block(body) => {
                for s in body {
                    self.stmt(s);
                }
            }
            StmtKind::Empty
            | StmtKind::Break(_)
            | StmtKind::Continue(_)
            | StmtKind::Debugger => {}
            StmtKind::Labeled { body, .. } => self.stmt(body),
            StmtKind::Switch { disc, cases } => {
                self.expr(disc);
                for c in cases {
                    if let Some(t) = &c.test {
                        self.expr(t);
                    }
                    for s in &c.body {
                        self.stmt(s);
                    }
                }
            }
            StmtKind::Throw(e) => {
                self.expr(e);
            }
            StmtKind::Try {
                block,
                catch,
                finally,
            } => {
                for s in block {
                    self.stmt(s);
                }
                if let Some(c) = catch {
                    // No exception flow: the catch variable is empty.
                    for s in &c.body {
                        self.stmt(s);
                    }
                }
                if let Some(f) = finally {
                    for s in f {
                        self.stmt(s);
                    }
                }
            }
        }
    }

    fn for_head_no_flow(&mut self, head: &ForHead) {
        if let ForHead::Target(e) = head {
            self.expr(e);
        }
    }

    // ----- patterns -----

    fn bind_pattern(&mut self, p: &Pattern, src: CellId) {
        match &p.kind {
            PatternKind::Ident(_) => {
                if let Some(v) = self.var_cell_of(p.id) {
                    self.solver.add_edge(src, v);
                }
            }
            PatternKind::Assign { pat, default } => {
                let d = self.expr(default);
                self.bind_pattern(pat, src);
                self.bind_pattern(pat, d);
            }
            PatternKind::Array { elems, rest } => {
                let elem_cell = self.solver.tmp();
                let elems_sym = self.solver.elems_sym;
                self.solver.add_constraint(
                    src,
                    Constraint::Load {
                        prop: elems_sym,
                        dst: elem_cell,
                    },
                );
                for e in elems.iter().flatten() {
                    self.bind_pattern(e, elem_cell);
                }
                if let Some(r) = rest {
                    let loc = self.loc(r.span);
                    let tok = self.obj_token(loc);
                    let f = self.solver.cell(CellKind::Field(tok, elems_sym));
                    self.solver.add_edge(elem_cell, f);
                    let rest_cell = self.solver.tmp();
                    self.solver.add_token(rest_cell, tok);
                    self.bind_pattern(r, rest_cell);
                }
            }
            PatternKind::Object { props, rest } => {
                for pr in props {
                    match &pr.key {
                        PropName::Computed(k) => {
                            self.expr(k);
                            // Dynamic destructuring read — ignored
                            // (baseline unsoundness).
                        }
                        other => {
                            if let Some(name) = other.static_name() {
                                let prop = self.solver.interner.intern(&name);
                                let tmp = self.solver.tmp();
                                self.solver
                                    .add_constraint(src, Constraint::Load { prop, dst: tmp });
                                self.bind_pattern(&pr.value, tmp);
                                continue;
                            }
                        }
                    }
                    // Computed keys: bind the sub-pattern to nothing.
                    self.bind_pattern_empty(&pr.value);
                }
                if let Some(r) = rest {
                    // Rest object: alias the source (approximation).
                    self.bind_pattern(r, src);
                }
            }
        }
    }

    fn bind_pattern_empty(&mut self, p: &Pattern) {
        let empty = self.solver.tmp();
        self.bind_pattern(p, empty);
    }

    // ----- functions and classes -----

    fn function(&mut self, f: &Function) -> FuncIdx {
        let loc = self.loc(f.span);
        let idx = FuncIdx(self.solver.funcs.len() as u32);
        self.solver.funcs.push(FuncInfo {
            node: f.id,
            loc,
            file: self.file,
            name: f.name.clone(),
            param_count: f.params.len() as u16,
            has_rest: f.rest.is_some(),
            enclosing: self.encl,
        });
        self.funcs_by_loc.insert(loc, idx);

        let saved_encl = self.encl;
        let saved_this = self.this_cell;
        self.encl = Encl::Func(idx);
        if !f.is_arrow {
            self.this_cell = self.solver.cell(CellKind::This(idx));
        }

        // Self-reference binding for named function expressions.
        if let Some(v) = self.res.self_of(f.id) {
            let tok = self.solver.token(TokenData::Func(idx));
            let cell = self.solver.cell(CellKind::Var(v));
            self.solver.add_token(cell, tok);
        }
        // `arguments`.
        if let Some(v) = self.res.arguments_of(f.id) {
            let tok = self.solver.token(TokenData::Args(idx));
            let cell = self.solver.cell(CellKind::Var(v));
            self.solver.add_token(cell, tok);
        }
        // Parameters.
        for (i, p) in f.params.iter().enumerate() {
            let pc = self.solver.cell(CellKind::Param(idx, i as u16));
            if let Some(d) = &p.default {
                let dc = self.expr(d);
                self.solver.add_edge(dc, pc);
            }
            self.bind_pattern(&p.pat, pc);
        }
        if let Some(r) = &f.rest {
            let tok = self.solver.token(TokenData::Rest(idx));
            let rc = self.solver.tmp();
            self.solver.add_token(rc, tok);
            self.bind_pattern(r, rc);
        }
        // Seed the prototype property.
        let ftok = self.solver.token(TokenData::Func(idx));
        let ptok = self.solver.token(TokenData::Proto(idx));
        let psym = self.solver.prototype_sym;
        let pf = self.solver.cell(CellKind::Field(ftok, psym));
        self.solver.add_token(pf, ptok);

        match &f.body {
            FuncBody::Block(stmts) => {
                for s in stmts {
                    self.stmt(s);
                }
            }
            FuncBody::Expr(e) => {
                let c = self.expr(e);
                let r = self.solver.cell(CellKind::Ret(idx));
                self.solver.add_edge(c, r);
            }
        }

        self.encl = saved_encl;
        self.this_cell = saved_this;
        idx
    }

    fn class(&mut self, c: &Class) -> Token {
        let class_loc = self.loc(c.span);
        // Constructor.
        let ctor = c.members.iter().find_map(|m| match &m.kind {
            ClassMemberKind::Constructor(f) => Some(f),
            _ => None,
        });
        let idx = match ctor {
            Some(f) => self.function(f),
            None => {
                let idx = FuncIdx(self.solver.funcs.len() as u32);
                self.solver.funcs.push(FuncInfo {
                    node: c.id,
                    loc: class_loc,
                    file: self.file,
                    name: c.name.clone(),
                    param_count: 0,
                    has_rest: false,
                    enclosing: self.encl,
                });
                idx
            }
        };
        // The class value's allocation site is the class itself (matching
        // the interpreter's `born_at`).
        self.funcs_by_loc.insert(class_loc, idx);
        let ftok = self.solver.token(TokenData::Func(idx));
        let ptok = self.solver.token(TokenData::Proto(idx));
        let psym = self.solver.prototype_sym;
        let pf = self.solver.cell(CellKind::Field(ftok, psym));
        self.solver.add_token(pf, ptok);

        // extends: link prototypes and statics.
        if let Some(sc) = &c.super_class {
            let scell = self.expr(sc);
            let tmp = self.solver.tmp();
            self.solver.add_constraint(
                scell,
                Constraint::Load {
                    prop: psym,
                    dst: tmp,
                },
            );
            self.solver
                .add_constraint(tmp, Constraint::ProtoFor { child: ptok });
            self.solver
                .add_constraint(scell, Constraint::ProtoFor { child: ftok });
        }

        for m in &c.members {
            let key_name = match &m.key {
                PropName::Computed(k) => {
                    self.expr(k);
                    None
                }
                other => other.static_name(),
            };
            let target = if m.is_static { ftok } else { ptok };
            match &m.kind {
                ClassMemberKind::Constructor(_) => {}
                ClassMemberKind::Method { kind, func } => {
                    let midx = self.function(func);
                    let mtok = self.solver.token(TokenData::Func(midx));
                    if let Some(name) = &key_name {
                        let prop = self.solver.interner.intern(name);
                        let field = self.solver.cell(CellKind::Field(target, prop));
                        match kind {
                            MethodKind::Method => {
                                self.solver.add_token(field, mtok);
                            }
                            MethodKind::Get => {
                                let r = self.solver.cell(CellKind::Ret(midx));
                                self.solver.add_edge(r, field);
                            }
                            MethodKind::Set => {
                                let p = self.solver.cell(CellKind::Param(midx, 0));
                                self.solver.add_edge(field, p);
                            }
                        }
                    }
                }
                ClassMemberKind::Field(init) => {
                    if let Some(e) = init {
                        let v = self.expr(e);
                        if let Some(name) = &key_name {
                            let prop = self.solver.interner.intern(name);
                            let field = self.solver.cell(CellKind::Field(target, prop));
                            self.solver.add_edge(v, field);
                        }
                    }
                }
            }
        }
        ftok
    }

    // ----- expressions -----

    fn expr(&mut self, e: &Expr) -> CellId {
        let cell = self.expr_cell(e);
        match &e.kind {
            ExprKind::Num(_)
            | ExprKind::Str(_)
            | ExprKind::Bool(_)
            | ExprKind::Null => {}
            ExprKind::Template { exprs, .. } => {
                for x in exprs {
                    self.expr(x);
                }
            }
            ExprKind::Regex { .. } => {
                let loc = self.loc(e.span);
                let tok = self.obj_token(loc);
                self.solver.add_token(cell, tok);
            }
            ExprKind::Ident(name) => {
                if name != "super" {
                    if let Some(v) = self.var_cell_of(e.id) {
                        self.solver.add_edge(v, cell);
                    }
                }
            }
            ExprKind::This => {
                let tc = self.this_cell;
                self.solver.add_edge(tc, cell);
            }
            ExprKind::Array(elems) => {
                let loc = self.loc(e.span);
                let tok = self.obj_token(loc);
                self.solver.add_token(cell, tok);
                let elems_sym = self.solver.elems_sym;
                let field = self.solver.cell(CellKind::Field(tok, elems_sym));
                for el in elems.iter().flatten() {
                    let c = self.expr(&el.expr);
                    if el.spread {
                        self.solver.add_constraint(
                            c,
                            Constraint::Load {
                                prop: elems_sym,
                                dst: field,
                            },
                        );
                    } else {
                        self.solver.add_edge(c, field);
                    }
                }
            }
            ExprKind::Object(props) => {
                let loc = self.loc(e.span);
                let tok = self.obj_token(loc);
                self.solver.add_token(cell, tok);
                for p in props {
                    match p {
                        Property::KeyValue { key, value } => {
                            let v = self.expr(value);
                            match key {
                                PropName::Computed(k) => {
                                    // Dynamic write in a literal — ignored
                                    // statically; hints recover it. Site
                                    // recorded for the ablation.
                                    self.expr(k);
                                    let base = self.solver.tmp();
                                    self.solver.add_token(base, tok);
                                    let loc = self.loc(e.span);
                                    self.dyn_writes.insert(loc, (base, v));
                                }
                                other => {
                                    if let Some(name) = other.static_name() {
                                        let prop = self.solver.interner.intern(&name);
                                        let f =
                                            self.solver.cell(CellKind::Field(tok, prop));
                                        self.solver.add_edge(v, f);
                                    }
                                }
                            }
                        }
                        Property::Method { key, kind, func } => {
                            let midx = self.function(func);
                            let mtok = self.solver.token(TokenData::Func(midx));
                            let name = match key {
                                PropName::Computed(k) => {
                                    self.expr(k);
                                    None
                                }
                                other => other.static_name(),
                            };
                            if let Some(name) = name {
                                let prop = self.solver.interner.intern(&name);
                                let f = self.solver.cell(CellKind::Field(tok, prop));
                                match kind {
                                    MethodKind::Method => self.solver.add_token(f, mtok),
                                    MethodKind::Get => {
                                        let r = self.solver.cell(CellKind::Ret(midx));
                                        self.solver.add_edge(r, f);
                                    }
                                    MethodKind::Set => {
                                        let p =
                                            self.solver.cell(CellKind::Param(midx, 0));
                                        self.solver.add_edge(f, p);
                                    }
                                }
                            }
                        }
                        Property::Spread(inner) => {
                            // Object spread is dynamic copying — ignored
                            // statically (hints recover the flows).
                            self.expr(inner);
                        }
                    }
                }
            }
            ExprKind::Function(f) | ExprKind::Arrow(f) => {
                let idx = self.function(f);
                let tok = self.solver.token(TokenData::Func(idx));
                self.solver.add_token(cell, tok);
            }
            ExprKind::Class(c) => {
                let tok = self.class(c);
                self.solver.add_token(cell, tok);
            }
            ExprKind::Unary { expr, .. } => {
                self.expr(expr);
            }
            ExprKind::Update { expr, .. } => {
                self.expr(expr);
            }
            ExprKind::Binary { left, right, .. } => {
                self.expr(left);
                self.expr(right);
            }
            ExprKind::Logical { left, right, .. } => {
                let l = self.expr(left);
                let r = self.expr(right);
                self.solver.add_edge(l, cell);
                self.solver.add_edge(r, cell);
            }
            ExprKind::Assign { op, target, value } => {
                let v = self.expr(value);
                let flows = matches!(
                    op,
                    AssignOp::Assign | AssignOp::And | AssignOp::Or | AssignOp::Nullish
                );
                if flows {
                    match target {
                        AssignTarget::Ident { id, .. } => {
                            if let Some(var) = self.var_cell_of(*id) {
                                self.solver.add_edge(v, var);
                                self.solver.add_edge(var, cell);
                            }
                        }
                        AssignTarget::Member(m) => {
                            self.assign_into_member(m, v);
                        }
                        AssignTarget::Pattern(p) => {
                            self.bind_pattern(p, v);
                        }
                    }
                } else {
                    // Arithmetic compound assignment: no object flow, but
                    // the target expression's sub-expressions must still be
                    // generated.
                    match target {
                        AssignTarget::Member(m) => {
                            self.expr(m);
                        }
                        AssignTarget::Ident { .. } | AssignTarget::Pattern(_) => {}
                    }
                }
                self.solver.add_edge(v, cell);
            }
            ExprKind::Cond { test, cons, alt } => {
                self.expr(test);
                let c1 = self.expr(cons);
                let c2 = self.expr(alt);
                self.solver.add_edge(c1, cell);
                self.solver.add_edge(c2, cell);
            }
            ExprKind::Call {
                callee,
                args,
                ..
            } => {
                return self.call(e, callee, args, false);
            }
            ExprKind::New { callee, args } => {
                return self.call(e, callee, args, true);
            }
            ExprKind::Member { obj, prop, .. } => {
                if matches!(&obj.unparen().kind, ExprKind::Ident(n) if n == "super") {
                    // `super.x` is not modeled statically.
                    return cell;
                }
                let base = self.expr(obj);
                match prop {
                    MemberProp::Static(name) => {
                        let p = self.solver.interner.intern(name);
                        self.solver
                            .add_constraint(base, Constraint::Load { prop: p, dst: cell });
                    }
                    MemberProp::Computed(k) => {
                        self.expr(k);
                        // Dynamic property read: ignored by the baseline;
                        // [DPR] injects hint tokens into `cell`.
                        let loc = self.loc(e.span);
                        self.dyn_reads.insert(loc, (base, cell));
                    }
                }
            }
            ExprKind::Seq(exprs) => {
                let mut last = None;
                for x in exprs {
                    last = Some(self.expr(x));
                }
                if let Some(l) = last {
                    self.solver.add_edge(l, cell);
                }
            }
            ExprKind::Paren(inner) => {
                let c = self.expr(inner);
                self.solver.add_edge(c, cell);
            }
        }
        cell
    }

    fn assign_into_expr(&mut self, target: &Expr, src: CellId) {
        match &target.unparen().kind {
            ExprKind::Ident(_) => {
                if let Some(v) = self.var_cell_of(target.unparen().id) {
                    self.solver.add_edge(src, v);
                }
            }
            ExprKind::Member { .. } => self.assign_into_member(target, src),
            _ => {}
        }
    }

    fn assign_into_member(&mut self, m: &Expr, src: CellId) {
        let ExprKind::Member { obj, prop, .. } = &m.unparen().kind else {
            return;
        };
        if matches!(&obj.unparen().kind, ExprKind::Ident(n) if n == "super") {
            return;
        }
        let base = self.expr(obj);
        match prop {
            MemberProp::Static(name) => {
                let p = self.solver.interner.intern(name);
                self.solver
                    .add_constraint(base, Constraint::Store { prop: p, src });
            }
            MemberProp::Computed(k) => {
                self.expr(k);
                // Dynamic property write: ignored by the baseline; [DPW]
                // injects hint flows globally. The site is recorded for
                // the non-relational ablation.
                let loc = self.loc(m.unparen().span);
                self.dyn_writes.insert(loc, (base, src));
            }
        }
    }

    // ----- calls -----

    fn call(&mut self, e: &Expr, callee: &Expr, args: &[ExprOrSpread], is_new: bool) -> CellId {
        let result = self.expr_cell(e);
        let loc = self.loc(e.span);

        // Evaluate arguments.
        let mut arg_cells = Vec::with_capacity(args.len());
        let mut any_spread = false;
        for a in args {
            arg_cells.push(self.expr(&a.expr));
            any_spread |= a.spread;
        }
        let spread = if any_spread {
            let sp = self.solver.tmp();
            let elems_sym = self.solver.elems_sym;
            for (a, cell) in args.iter().zip(&arg_cells) {
                if a.spread {
                    self.solver.add_constraint(
                        *cell,
                        Constraint::Load {
                            prop: elems_sym,
                            dst: sp,
                        },
                    );
                }
            }
            Some(sp)
        } else {
            None
        };
        let lit_arg0 = args
            .first()
            .filter(|a| !a.spread)
            .and_then(|a| a.expr.as_str_lit().map(|s| s.to_string()));

        let new_token = if is_new {
            Some(self.obj_token(loc))
        } else {
            None
        };
        let site_idx = self.solver.sites.len() as u32;
        self.solver.sites.push(CallSite {
            node: e.id,
            loc,
            file: self.file,
            enclosing: self.encl,
            args: arg_cells.clone(),
            spread,
            this_cell: None,
            result,
            is_new,
            new_token,
            lit_arg0,
        });

        let callee_u = callee.unparen();
        match &callee_u.kind {
            // `super(...)` — constructor chaining is not modeled.
            ExprKind::Ident(n) if n == "super" => {}
            ExprKind::Member { obj, prop, .. }
                if !matches!(&obj.unparen().kind, ExprKind::Ident(n) if n == "super") =>
            {
                let base = self.expr(obj);
                self.solver.sites[site_idx as usize].this_cell = Some(base);
                let member_cell = self.expr_cell(callee_u);
                match prop {
                    MemberProp::Static(name) => {
                        let p = self.solver.interner.intern(name);
                        self.solver.add_constraint(
                            base,
                            Constraint::Load {
                                prop: p,
                                dst: member_cell,
                            },
                        );
                        self.solver
                            .add_constraint(member_cell, Constraint::Call { site: site_idx });
                        self.method_model(site_idx, name, base, &arg_cells, result, loc);
                    }
                    MemberProp::Computed(k) => {
                        self.expr(k);
                        let mloc = self.loc(callee_u.span);
                        self.dyn_reads.insert(mloc, (base, member_cell));
                        self.solver
                            .add_constraint(member_cell, Constraint::Call { site: site_idx });
                    }
                }
            }
            _ => {
                let c = self.expr(callee);
                self.solver
                    .add_constraint(c, Constraint::Call { site: site_idx });
            }
        }
        result
    }

    /// Gen-time models for well-known method names (stdlib behavior that
    /// the token-based resolution cannot see because the receiver is an
    /// ordinary object token).
    fn method_model(
        &mut self,
        site: u32,
        name: &str,
        base: CellId,
        args: &[CellId],
        result: CellId,
        loc: Loc,
    ) {
        let elems_sym = self.solver.elems_sym;
        match name {
            "call" => {
                self.solver.add_constraint(base, Constraint::DotCall { site });
            }
            "apply" => {
                // Collect the argument array's elements in the site's
                // spread cell.
                let sp = self.solver.tmp();
                if let Some(a1) = args.get(1) {
                    self.solver.add_constraint(
                        *a1,
                        Constraint::Load {
                            prop: elems_sym,
                            dst: sp,
                        },
                    );
                }
                self.solver.sites[site as usize].spread = Some(sp);
                self.solver
                    .add_constraint(base, Constraint::DotApply { site });
            }
            "bind" => {
                // Bound functions keep their identity.
                self.solver.add_edge(base, result);
            }
            "forEach" | "map" | "filter" | "find" | "findIndex" | "some" | "every" | "sort"
            | "flatMap" => {
                let elem = self.solver.tmp();
                self.solver.add_constraint(
                    base,
                    Constraint::Load {
                        prop: elems_sym,
                        dst: elem,
                    },
                );
                let ret = match name {
                    "map" | "flatMap" => {
                        let tok = self.obj_token(loc);
                        self.solver.add_token(result, tok);
                        Some(self.solver.cell(CellKind::Field(tok, elems_sym)))
                    }
                    _ => None,
                };
                match name {
                    "filter" | "sort" => self.solver.add_edge(base, result),
                    "find" => self.solver.add_edge(elem, result),
                    _ => {}
                }
                if let Some(cb) = args.first() {
                    self.solver.add_constraint(
                        *cb,
                        Constraint::Callback {
                            site,
                            p0: Some(elem),
                            p1: None,
                            this0: args.get(1).copied(),
                            ret,
                        },
                    );
                }
            }
            "reduce" | "reduceRight" => {
                let elem = self.solver.tmp();
                self.solver.add_constraint(
                    base,
                    Constraint::Load {
                        prop: elems_sym,
                        dst: elem,
                    },
                );
                let acc = self.solver.tmp();
                if let Some(init) = args.get(1) {
                    self.solver.add_edge(*init, acc);
                }
                self.solver.add_edge(elem, acc);
                self.solver.add_edge(acc, result);
                if let Some(cb) = args.first() {
                    self.solver.add_constraint(
                        *cb,
                        Constraint::Callback {
                            site,
                            p0: Some(acc),
                            p1: Some(elem),
                            this0: None,
                            ret: Some(acc),
                        },
                    );
                }
            }
            "push" | "unshift" => {
                for a in args {
                    self.solver
                        .add_constraint(base, Constraint::Store { prop: elems_sym, src: *a });
                }
            }
            "pop" | "shift" => {
                self.solver.add_constraint(
                    base,
                    Constraint::Load {
                        prop: elems_sym,
                        dst: result,
                    },
                );
            }
            "concat" => {
                self.solver.add_edge(base, result);
                for a in args {
                    let tmp = self.solver.tmp();
                    self.solver.add_constraint(
                        *a,
                        Constraint::Load {
                            prop: elems_sym,
                            dst: tmp,
                        },
                    );
                    self.solver
                        .add_constraint(base, Constraint::Store { prop: elems_sym, src: tmp });
                }
            }
            "slice" | "splice" | "reverse" | "fill" | "flat" => {
                self.solver.add_edge(base, result);
            }
            "then" => {
                self.solver.add_edge(base, result);
                for cb in args.iter().take(2) {
                    self.solver.add_constraint(
                        *cb,
                        Constraint::Callback {
                            site,
                            p0: None,
                            p1: None,
                            this0: None,
                            ret: None,
                        },
                    );
                }
            }
            "catch" | "finally" => {
                self.solver.add_edge(base, result);
                if let Some(cb) = args.first() {
                    self.solver.add_constraint(
                        *cb,
                        Constraint::Callback {
                            site,
                            p0: None,
                            p1: None,
                            this0: None,
                            ret: None,
                        },
                    );
                }
            }
            "on" | "once" | "addListener" | "prependListener" => {
                // Listener registration: the listener will be invoked.
                self.solver.add_edge(base, result);
                if let Some(cb) = args.get(1) {
                    self.solver.add_constraint(
                        *cb,
                        Constraint::Callback {
                            site,
                            p0: None,
                            p1: None,
                            this0: Some(base),
                            ret: None,
                        },
                    );
                }
            }
            _ => {}
        }
    }
}
