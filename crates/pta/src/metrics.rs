//! The paper's evaluation metrics (§5): call edges, reachable functions,
//! resolved/monomorphic call sites, and — when a dynamic call graph is
//! available — call edge set recall and per-call precision.

use crate::callgraph::CallGraph;
use aji_ast::Loc;
use std::collections::{BTreeMap, BTreeSet};

/// Call-graph quality metrics that need no ground truth.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CgMetrics {
    /// Number of call edges.
    pub call_edges: usize,
    /// Functions reachable from the main package's module top-levels.
    pub reachable_functions: usize,
    /// All function definitions.
    pub total_functions: usize,
    /// Call sites with at least one callee.
    pub resolved_sites: usize,
    /// Call sites with at most one callee.
    pub monomorphic_sites: usize,
    /// Total call sites.
    pub total_sites: usize,
}

impl CgMetrics {
    /// Computes the metrics of a call graph.
    pub fn of(cg: &CallGraph) -> CgMetrics {
        CgMetrics {
            call_edges: cg.edge_count(),
            reachable_functions: cg.reachable_functions.len(),
            total_functions: cg.all_functions.len(),
            resolved_sites: cg.resolved_sites(),
            monomorphic_sites: cg.monomorphic_sites(),
            total_sites: cg.total_sites(),
        }
    }

    /// Percentage of resolved call sites (Figure 6).
    pub fn resolved_pct(&self) -> f64 {
        pct(self.resolved_sites, self.total_sites)
    }

    /// Percentage of monomorphic call sites (Figure 7).
    pub fn monomorphic_pct(&self) -> f64 {
        pct(self.monomorphic_sites, self.total_sites)
    }
}

fn pct(num: usize, den: usize) -> f64 {
    if den == 0 {
        100.0
    } else {
        100.0 * num as f64 / den as f64
    }
}

/// Recall/precision of a static call graph against a dynamic one
/// (Table 2). The dynamic call graph is a set of (call-site location,
/// callee definition location) pairs.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Accuracy {
    /// Dynamic edges found by the static analysis.
    pub matched_edges: usize,
    /// Total dynamic edges.
    pub dynamic_edges: usize,
    /// Sum of per-call precision contributions.
    precision_sum: f64,
    /// Number of call sites contributing to precision.
    precision_sites: usize,
}

impl Accuracy {
    /// Compares a static call graph against dynamic edges.
    pub fn compare(cg: &CallGraph, dynamic: &BTreeSet<(Loc, Loc)>) -> Accuracy {
        let matched = dynamic.iter().filter(|e| cg.edges.contains(e)).count();

        // Group dynamic edges per call site.
        let mut dyn_by_site: BTreeMap<Loc, BTreeSet<Loc>> = BTreeMap::new();
        for (cs, callee) in dynamic {
            dyn_by_site.entry(*cs).or_default().insert(*callee);
        }
        let mut precision_sum = 0.0;
        let mut precision_sites = 0;
        for (cs, dyn_targets) in &dyn_by_site {
            let static_targets = match cg.site_targets.get(cs) {
                Some(t) if !t.is_empty() => t,
                _ => continue,
            };
            let inter = static_targets.intersection(dyn_targets).count();
            precision_sum += inter as f64 / static_targets.len() as f64;
            precision_sites += 1;
        }
        Accuracy {
            matched_edges: matched,
            dynamic_edges: dynamic.len(),
            precision_sum,
            precision_sites,
        }
    }

    /// Call edge set recall (%, Table 2): dynamic edges also found
    /// statically.
    pub fn recall_pct(&self) -> f64 {
        pct(self.matched_edges, self.dynamic_edges)
    }

    /// Per-call precision (%, Table 2).
    pub fn precision_pct(&self) -> f64 {
        if self.precision_sites == 0 {
            100.0
        } else {
            100.0 * self.precision_sum / self.precision_sites as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aji_ast::FileId;

    fn loc(l: u32) -> Loc {
        Loc::new(FileId(0), l, 1)
    }

    fn cg_with_edges(edges: &[(u32, u32)], extra_sites: &[u32]) -> CallGraph {
        let mut cg = CallGraph::default();
        for (a, b) in edges {
            cg.edges.insert((loc(*a), loc(*b)));
            cg.site_targets.entry(loc(*a)).or_default().insert(loc(*b));
            cg.all_functions.insert(loc(*b));
        }
        for s in extra_sites {
            cg.site_targets.entry(loc(*s)).or_default();
        }
        cg
    }

    #[test]
    fn basic_metrics() {
        let cg = cg_with_edges(&[(1, 10), (1, 11), (2, 10)], &[3]);
        let m = CgMetrics::of(&cg);
        assert_eq!(m.call_edges, 3);
        assert_eq!(m.total_sites, 3);
        assert_eq!(m.resolved_sites, 2);
        // site 1 has 2 targets (poly), site 2 has 1, site 3 has 0.
        assert_eq!(m.monomorphic_sites, 2);
        assert!((m.resolved_pct() - 66.666).abs() < 0.01);
    }

    #[test]
    fn recall_and_precision() {
        let cg = cg_with_edges(&[(1, 10), (1, 11), (2, 10)], &[]);
        let mut dynamic = BTreeSet::new();
        dynamic.insert((loc(1), loc(10))); // matched
        dynamic.insert((loc(2), loc(12))); // missed
        let acc = Accuracy::compare(&cg, &dynamic);
        assert_eq!(acc.matched_edges, 1);
        assert_eq!(acc.dynamic_edges, 2);
        assert!((acc.recall_pct() - 50.0).abs() < 1e-9);
        // Site 1: static {10, 11}, dynamic {10} → 0.5.
        // Site 2: static {10}, dynamic {12} → 0.0.
        assert!((acc.precision_pct() - 25.0).abs() < 1e-9);
    }

    #[test]
    fn empty_dynamic_graph() {
        let cg = cg_with_edges(&[(1, 10)], &[]);
        let acc = Accuracy::compare(&cg, &BTreeSet::new());
        assert_eq!(acc.recall_pct(), 100.0);
        assert_eq!(acc.precision_pct(), 100.0);
    }
}
