//! The paper's evaluation metrics (§5): call edges, reachable functions,
//! resolved/monomorphic call sites, and — when a dynamic call graph is
//! available — call edge set recall and per-call precision.

use crate::callgraph::CallGraph;
use aji_ast::Loc;
use aji_support::{FromJson, Json, JsonError, ToJson};
use std::collections::{BTreeMap, BTreeSet};

/// Call-graph quality metrics that need no ground truth.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CgMetrics {
    /// Number of call edges.
    pub call_edges: usize,
    /// Functions reachable from the main package's module top-levels.
    pub reachable_functions: usize,
    /// All function definitions.
    pub total_functions: usize,
    /// Call sites with at least one callee.
    pub resolved_sites: usize,
    /// Call sites with at most one callee.
    pub monomorphic_sites: usize,
    /// Total call sites.
    pub total_sites: usize,
}

impl CgMetrics {
    /// Computes the metrics of a call graph.
    #[must_use]
    pub fn of(cg: &CallGraph) -> CgMetrics {
        CgMetrics {
            call_edges: cg.edge_count(),
            reachable_functions: cg.reachable_functions.len(),
            total_functions: cg.all_functions.len(),
            resolved_sites: cg.resolved_sites(),
            monomorphic_sites: cg.monomorphic_sites(),
            total_sites: cg.total_sites(),
        }
    }

    /// Percentage of resolved call sites (Figure 6).
    #[must_use]
    pub fn resolved_pct(&self) -> f64 {
        pct(self.resolved_sites, self.total_sites)
    }

    /// Percentage of monomorphic call sites (Figure 7).
    #[must_use]
    pub fn monomorphic_pct(&self) -> f64 {
        pct(self.monomorphic_sites, self.total_sites)
    }
}

impl ToJson for CgMetrics {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("call_edges", self.call_edges.to_json()),
            ("reachable_functions", self.reachable_functions.to_json()),
            ("total_functions", self.total_functions.to_json()),
            ("resolved_sites", self.resolved_sites.to_json()),
            ("monomorphic_sites", self.monomorphic_sites.to_json()),
            ("total_sites", self.total_sites.to_json()),
        ])
    }
}

impl FromJson for CgMetrics {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let field = |k: &str| {
            v.get(k)
                .ok_or_else(|| JsonError::shape(format!("metrics missing field '{k}'")))
                .and_then(usize::from_json)
        };
        Ok(CgMetrics {
            call_edges: field("call_edges")?,
            reachable_functions: field("reachable_functions")?,
            total_functions: field("total_functions")?,
            resolved_sites: field("resolved_sites")?,
            monomorphic_sites: field("monomorphic_sites")?,
            total_sites: field("total_sites")?,
        })
    }
}

fn pct(num: usize, den: usize) -> f64 {
    if den == 0 {
        100.0
    } else {
        100.0 * num as f64 / den as f64
    }
}

/// Recall/precision of a static call graph against a dynamic one
/// (Table 2). The dynamic call graph is a set of (call-site location,
/// callee definition location) pairs.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Accuracy {
    /// Dynamic edges found by the static analysis.
    pub matched_edges: usize,
    /// Total dynamic edges.
    pub dynamic_edges: usize,
    /// Sum of per-call precision contributions.
    precision_sum: f64,
    /// Number of call sites contributing to precision.
    precision_sites: usize,
}

impl Accuracy {
    /// Compares a static call graph against dynamic edges.
    #[must_use]
    pub fn compare(cg: &CallGraph, dynamic: &BTreeSet<(Loc, Loc)>) -> Accuracy {
        let matched = dynamic.iter().filter(|e| cg.edges.contains(e)).count();

        // Group dynamic edges per call site.
        let mut dyn_by_site: BTreeMap<Loc, BTreeSet<Loc>> = BTreeMap::new();
        for (cs, callee) in dynamic {
            dyn_by_site.entry(*cs).or_default().insert(*callee);
        }
        let mut precision_sum = 0.0;
        let mut precision_sites = 0;
        for (cs, dyn_targets) in &dyn_by_site {
            let static_targets = match cg.site_targets.get(cs) {
                Some(t) if !t.is_empty() => t,
                _ => continue,
            };
            let inter = static_targets.intersection(dyn_targets).count();
            precision_sum += inter as f64 / static_targets.len() as f64;
            precision_sites += 1;
        }
        Accuracy {
            matched_edges: matched,
            dynamic_edges: dynamic.len(),
            precision_sum,
            precision_sites,
        }
    }

    /// Call edge set recall (%, Table 2): dynamic edges also found
    /// statically.
    #[must_use]
    pub fn recall_pct(&self) -> f64 {
        pct(self.matched_edges, self.dynamic_edges)
    }

    /// Per-call precision (%, Table 2).
    #[must_use]
    pub fn precision_pct(&self) -> f64 {
        if self.precision_sites == 0 {
            100.0
        } else {
            100.0 * self.precision_sum / self.precision_sites as f64
        }
    }
}

impl ToJson for Accuracy {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("matched_edges", self.matched_edges.to_json()),
            ("dynamic_edges", self.dynamic_edges.to_json()),
            ("recall_pct", Json::Num(self.recall_pct())),
            ("precision_pct", Json::Num(self.precision_pct())),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aji_ast::FileId;

    fn loc(l: u32) -> Loc {
        Loc::new(FileId(0), l, 1)
    }

    fn cg_with_edges(edges: &[(u32, u32)], extra_sites: &[u32]) -> CallGraph {
        let mut cg = CallGraph::default();
        for (a, b) in edges {
            cg.edges.insert((loc(*a), loc(*b)));
            cg.site_targets.entry(loc(*a)).or_default().insert(loc(*b));
            cg.all_functions.insert(loc(*b));
        }
        for s in extra_sites {
            cg.site_targets.entry(loc(*s)).or_default();
        }
        cg
    }

    #[test]
    fn basic_metrics() {
        let cg = cg_with_edges(&[(1, 10), (1, 11), (2, 10)], &[3]);
        let m = CgMetrics::of(&cg);
        assert_eq!(m.call_edges, 3);
        assert_eq!(m.total_sites, 3);
        assert_eq!(m.resolved_sites, 2);
        // site 1 has 2 targets (poly), site 2 has 1, site 3 has 0.
        assert_eq!(m.monomorphic_sites, 2);
        assert!((m.resolved_pct() - 66.666).abs() < 0.01);
    }

    #[test]
    fn recall_and_precision() {
        let cg = cg_with_edges(&[(1, 10), (1, 11), (2, 10)], &[]);
        let mut dynamic = BTreeSet::new();
        dynamic.insert((loc(1), loc(10))); // matched
        dynamic.insert((loc(2), loc(12))); // missed
        let acc = Accuracy::compare(&cg, &dynamic);
        assert_eq!(acc.matched_edges, 1);
        assert_eq!(acc.dynamic_edges, 2);
        assert!((acc.recall_pct() - 50.0).abs() < 1e-9);
        // Site 1: static {10, 11}, dynamic {10} → 0.5.
        // Site 2: static {10}, dynamic {12} → 0.0.
        assert!((acc.precision_pct() - 25.0).abs() < 1e-9);
    }

    #[test]
    fn empty_dynamic_graph() {
        let cg = cg_with_edges(&[(1, 10)], &[]);
        let acc = Accuracy::compare(&cg, &BTreeSet::new());
        assert_eq!(acc.recall_pct(), 100.0);
        assert_eq!(acc.precision_pct(), 100.0);
    }

    #[test]
    fn metrics_json_roundtrip() {
        let cg = cg_with_edges(&[(1, 10), (1, 11), (2, 10)], &[3]);
        let m = CgMetrics::of(&cg);
        let back =
            CgMetrics::from_json(&Json::parse(&m.to_json().to_string()).unwrap()).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn accuracy_json_reports_percentages() {
        let cg = cg_with_edges(&[(1, 10)], &[]);
        let mut dynamic = BTreeSet::new();
        dynamic.insert((loc(1), loc(10)));
        dynamic.insert((loc(2), loc(12)));
        let j = Accuracy::compare(&cg, &dynamic).to_json();
        assert_eq!(j.get("matched_edges").and_then(Json::as_f64), Some(1.0));
        assert_eq!(j.get("dynamic_edges").and_then(Json::as_f64), Some(2.0));
        assert_eq!(j.get("recall_pct").and_then(Json::as_f64), Some(50.0));
    }
}
