//! Subset-constraint solver: tokens, cells, difference propagation and
//! on-the-fly call resolution (Figure 3 of the paper, plus pragmatic
//! models of the core standard library in the style of Jelly).

use crate::scopes::VarId;
use aji_ast::{FileId, Loc, NodeId};
use std::collections::{HashMap, HashSet, VecDeque};

/// Interned string (property names, builtin paths).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Sym(pub u32);

/// Simple string interner.
#[derive(Debug, Default)]
pub struct Interner {
    map: HashMap<String, Sym>,
    names: Vec<String>,
}

impl Interner {
    /// Interns a string.
    pub fn intern(&mut self, s: &str) -> Sym {
        if let Some(&sym) = self.map.get(s) {
            return sym;
        }
        let sym = Sym(self.names.len() as u32);
        self.names.push(s.to_string());
        self.map.insert(s.to_string(), sym);
        sym
    }

    /// The string of a symbol.
    pub fn name(&self, s: Sym) -> &str {
        &self.names[s.0 as usize]
    }
}

/// Index of a function in the solver's function table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FuncIdx(pub u32);

/// An abstract value (allocation-site abstraction, Figure 3's `V`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Token(pub u32);

/// What a token abstracts.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum TokenData {
    /// Objects allocated at a source location (object/array literals,
    /// `new` sites, `Object.create` sites, hint-referenced sites).
    Obj(Loc),
    /// Function values of a function definition.
    Func(FuncIdx),
    /// The initial `prototype` object of a function.
    Proto(FuncIdx),
    /// A module's `module` object.
    ModuleObj(FileId),
    /// A module's initial `exports` object.
    Exports(FileId),
    /// An opaque builtin, identified by a dotted path like
    /// `Object.create` or `module:events`.
    Builtin(Sym),
    /// The `arguments` object of a function.
    Args(FuncIdx),
    /// The rest-parameter array of a function.
    Rest(FuncIdx),
}

/// Where a call site or function definition syntactically lives — the
/// reachability roots and edges in §5's "reachable functions" metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Encl {
    /// Top-level code of a module.
    Module(FileId),
    /// Inside a function definition.
    Func(FuncIdx),
}

/// A constraint-variable cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CellKind {
    /// A resolved variable.
    Var(VarId),
    /// An expression's value.
    Expr(NodeId),
    /// A property of an abstract object: `⟦t.p⟧`.
    Field(Token, Sym),
    /// Parameter `i` of a function.
    Param(FuncIdx, u16),
    /// Return cell of a function.
    Ret(FuncIdx),
    /// `this` cell of a function.
    This(FuncIdx),
    /// `this` at a module's top level.
    ModuleThis(FileId),
    /// Generator-allocated temporary.
    Tmp(u32),
}

/// Cell handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CellId(pub u32);

/// Complex constraints attached to cells, fired per arriving token.
#[derive(Debug, Clone)]
pub enum Constraint {
    /// `dst ⊇ ⟦t.prop⟧` for every token `t` arriving here (property read,
    /// consulting the prototype chain).
    Load {
        /// Property read.
        prop: Sym,
        /// Destination cell.
        dst: CellId,
    },
    /// `⟦t.prop⟧ ⊇ src` for every `t` arriving here (property write).
    Store {
        /// Property written.
        prop: Sym,
        /// Source cell.
        src: CellId,
    },
    /// Arriving tokens are callees of call site `site`.
    Call {
        /// Call-site index.
        site: u32,
    },
    /// Arriving function tokens are invoked as callbacks of `site` with
    /// the given argument/return wiring (stdlib model).
    Callback {
        /// Call-site index (for the call edge).
        site: u32,
        /// Cell flowing into the callback's first parameter.
        p0: Option<CellId>,
        /// Cell flowing into the callback's second parameter.
        p1: Option<CellId>,
        /// Cell flowing into the callback's `this`.
        this0: Option<CellId>,
        /// Cell receiving the callback's return value.
        ret: Option<CellId>,
    },
    /// Arriving function tokens are invoked via `f.call(this, a, b)`.
    DotCall {
        /// Call-site index.
        site: u32,
    },
    /// Arriving function tokens are invoked via `f.apply(this, args)`.
    DotApply {
        /// Call-site index.
        site: u32,
    },
    /// Arriving tokens become prototypes of `child`.
    ProtoFor {
        /// The token whose prototype set grows.
        child: Token,
    },
}

/// Metadata of one function definition.
#[derive(Debug)]
pub struct FuncInfo {
    /// Definition node.
    pub node: NodeId,
    /// Definition location (matches hint locations).
    pub loc: Loc,
    /// File containing the definition.
    pub file: FileId,
    /// Name (diagnostics).
    pub name: Option<String>,
    /// Number of declared parameters.
    pub param_count: u16,
    /// Whether the function has a rest parameter.
    pub has_rest: bool,
    /// Where the definition lives (reachability edge source grouping).
    pub enclosing: Encl,
}

/// One call or `new` site.
#[derive(Debug)]
pub struct CallSite {
    /// The call expression node.
    pub node: NodeId,
    /// Location of the call expression.
    pub loc: Loc,
    /// File of the call site.
    pub file: FileId,
    /// Syntactic context.
    pub enclosing: Encl,
    /// Argument cells, in order.
    pub args: Vec<CellId>,
    /// Cell collecting elements of spread arguments, if any.
    pub spread: Option<CellId>,
    /// Receiver cell for method calls.
    pub this_cell: Option<CellId>,
    /// Result cell.
    pub result: CellId,
    /// Whether this is a `new` expression.
    pub is_new: bool,
    /// The abstract object allocated by a `new` site (pre-minted by the
    /// generator so hint locations resolve to the same token).
    pub new_token: Option<Token>,
    /// First argument when it is a string literal (for `require`).
    pub lit_arg0: Option<String>,
}

#[derive(Debug, Default)]
struct Cell {
    tokens: HashSet<Token>,
    succs: Vec<CellId>,
    cons: Vec<Constraint>,
}

/// Solver statistics.
#[derive(Debug, Clone, Default)]
pub struct SolverStats {
    /// Number of cells created.
    pub cells: usize,
    /// Number of tokens created.
    pub tokens: usize,
    /// Number of (cell, token) propagation steps processed.
    pub propagations: u64,
    /// Number of [`Solver::solve`] fixpoint rounds run.
    pub solve_rounds: u64,
}

/// The constraint solver.
pub struct Solver {
    /// String interner for properties and builtin paths.
    pub interner: Interner,
    /// Function table.
    pub funcs: Vec<FuncInfo>,
    /// Call-site table.
    pub sites: Vec<CallSite>,
    /// Token table.
    pub token_data: Vec<TokenData>,
    /// Project file paths (for `require` resolution), indexed by FileId.
    pub paths: Vec<String>,

    cells: Vec<Cell>,
    cell_ids: HashMap<CellKind, CellId>,
    token_ids: HashMap<TokenData, Token>,
    tmp_counter: u32,
    worklist: VecDeque<(CellId, Token)>,

    /// Prototype graph: token → its prototypes.
    protos: HashMap<Token, Vec<Token>>,
    inv_protos: HashMap<Token, Vec<Token>>,
    loads_by_token: HashMap<Token, Vec<(Sym, CellId)>>,

    /// Discovered call edges: (site, callee function).
    pub call_edges: HashSet<(u32, FuncIdx)>,
    /// Discovered module-load edges: (site, loaded file).
    pub module_edges: HashSet<(u32, FileId)>,
    /// Module hints: `require` site loc → file paths (extended mode).
    pub module_hints: HashMap<Loc, Vec<String>>,

    /// The interned element property for arrays.
    pub elems_sym: Sym,
    /// The interned `prototype` property.
    pub prototype_sym: Sym,

    /// Statistics.
    pub stats: SolverStats,
}

impl Solver {
    /// Creates an empty solver for a project with the given file paths.
    pub fn new(paths: Vec<String>) -> Self {
        let mut interner = Interner::default();
        let elems_sym = interner.intern("\u{0}elems");
        let prototype_sym = interner.intern("prototype");
        Solver {
            interner,
            funcs: Vec::new(),
            sites: Vec::new(),
            token_data: Vec::new(),
            paths,
            cells: Vec::new(),
            cell_ids: HashMap::new(),
            token_ids: HashMap::new(),
            tmp_counter: 0,
            worklist: VecDeque::new(),
            protos: HashMap::new(),
            inv_protos: HashMap::new(),
            loads_by_token: HashMap::new(),
            call_edges: HashSet::new(),
            module_edges: HashSet::new(),
            module_hints: HashMap::new(),
            elems_sym,
            prototype_sym,
            stats: SolverStats::default(),
        }
    }

    /// Returns (or creates) the cell for a kind.
    pub fn cell(&mut self, kind: CellKind) -> CellId {
        if let Some(&id) = self.cell_ids.get(&kind) {
            return id;
        }
        let id = CellId(self.cells.len() as u32);
        self.cells.push(Cell::default());
        self.cell_ids.insert(kind, id);
        self.stats.cells += 1;
        id
    }

    /// Creates a fresh temporary cell.
    pub fn tmp(&mut self) -> CellId {
        self.tmp_counter += 1;
        self.cell(CellKind::Tmp(self.tmp_counter))
    }

    /// Returns (or creates) the token for a datum.
    pub fn token(&mut self, data: TokenData) -> Token {
        if let Some(&t) = self.token_ids.get(&data) {
            return t;
        }
        let t = Token(self.token_data.len() as u32);
        self.token_data.push(data.clone());
        self.token_ids.insert(data, t);
        self.stats.tokens += 1;
        t
    }

    /// The data of a token.
    pub fn data(&self, t: Token) -> &TokenData {
        &self.token_data[t.0 as usize]
    }

    /// Adds a token to a cell.
    pub fn add_token(&mut self, cell: CellId, t: Token) {
        if self.cells[cell.0 as usize].tokens.insert(t) {
            self.worklist.push_back((cell, t));
        }
    }

    /// Adds a subset edge `from ⊆ to` and propagates existing tokens.
    pub fn add_edge(&mut self, from: CellId, to: CellId) {
        if from == to {
            return;
        }
        let c = &mut self.cells[from.0 as usize];
        if c.succs.contains(&to) {
            return;
        }
        c.succs.push(to);
        let tokens: Vec<Token> = self.cells[from.0 as usize]
            .tokens
            .iter()
            .copied()
            .collect();
        for t in tokens {
            self.add_token(to, t);
        }
    }

    /// Attaches a constraint to a cell, replaying existing tokens.
    pub fn add_constraint(&mut self, cell: CellId, c: Constraint) {
        let tokens: Vec<Token> = self.cells[cell.0 as usize]
            .tokens
            .iter()
            .copied()
            .collect();
        self.cells[cell.0 as usize].cons.push(c.clone());
        for t in tokens {
            self.apply(cell, t, &c);
        }
    }

    /// The tokens currently in a cell.
    pub fn tokens_of(&self, cell: CellId) -> Vec<Token> {
        self.cells[cell.0 as usize]
            .tokens
            .iter()
            .copied()
            .collect()
    }

    /// Looks up a cell without creating it.
    pub fn cell_if_exists(&self, kind: CellKind) -> Option<CellId> {
        self.cell_ids.get(&kind).copied()
    }

    /// Runs propagation to a fixpoint.
    pub fn solve(&mut self) {
        let steps = aji_obs::counter("pta.propagations");
        let before = self.stats.propagations;
        while let Some((cell, t)) = self.worklist.pop_front() {
            self.stats.propagations += 1;
            steps.inc();
            // Successors.
            let succs = self.cells[cell.0 as usize].succs.clone();
            for s in succs {
                self.add_token(s, t);
            }
            // Constraints.
            let cons = self.cells[cell.0 as usize].cons.clone();
            for c in cons {
                self.apply(cell, t, &c);
            }
        }
        self.stats.solve_rounds += 1;
        if steps.is_live() {
            aji_obs::counter_add("pta.solve_rounds", 1);
            aji_obs::histogram_record(
                "pta.propagations_per_round",
                self.stats.propagations - before,
            );
        }
    }

    fn apply(&mut self, _cell: CellId, t: Token, c: &Constraint) {
        match c {
            Constraint::Load { prop, dst } => self.apply_load(t, *prop, *dst),
            Constraint::Store { prop, src } => {
                let f = self.cell(CellKind::Field(t, *prop));
                self.add_edge(*src, f);
            }
            Constraint::Call { site } => self.resolve_call(*site, t),
            Constraint::Callback {
                site,
                p0,
                p1,
                this0,
                ret,
            } => {
                if let TokenData::Func(f) = *self.data(t) {
                    self.call_edges.insert((*site, f));
                    let info_params = self.funcs[f.0 as usize].param_count;
                    if let Some(p0) = p0 {
                        if info_params > 0 {
                            let pc = self.cell(CellKind::Param(f, 0));
                            self.add_edge(*p0, pc);
                        }
                    }
                    if let Some(p1) = p1 {
                        if info_params > 1 {
                            let pc = self.cell(CellKind::Param(f, 1));
                            self.add_edge(*p1, pc);
                        }
                    }
                    if let Some(this0) = this0 {
                        let tc = self.cell(CellKind::This(f));
                        self.add_edge(*this0, tc);
                    }
                    if let Some(ret) = ret {
                        let rc = self.cell(CellKind::Ret(f));
                        self.add_edge(rc, *ret);
                    }
                }
            }
            Constraint::DotCall { site } => {
                if let TokenData::Func(f) = *self.data(t) {
                    let site_idx = *site;
                    self.call_edges.insert((site_idx, f));
                    let (args, result) = {
                        let s = &self.sites[site_idx as usize];
                        (s.args.clone(), s.result)
                    };
                    if let Some(this_arg) = args.first() {
                        let tc = self.cell(CellKind::This(f));
                        self.add_edge(*this_arg, tc);
                    }
                    let n = self.funcs[f.0 as usize].param_count as usize;
                    for (i, a) in args.iter().skip(1).enumerate() {
                        if i < n {
                            let pc = self.cell(CellKind::Param(f, i as u16));
                            self.add_edge(*a, pc);
                        }
                    }
                    let rc = self.cell(CellKind::Ret(f));
                    self.add_edge(rc, result);
                }
            }
            Constraint::DotApply { site } => {
                if let TokenData::Func(f) = *self.data(t) {
                    let site_idx = *site;
                    self.call_edges.insert((site_idx, f));
                    let (args, spread, result) = {
                        let s = &self.sites[site_idx as usize];
                        (s.args.clone(), s.spread, s.result)
                    };
                    if let Some(this_arg) = args.first() {
                        let tc = self.cell(CellKind::This(f));
                        self.add_edge(*this_arg, tc);
                    }
                    // The elements of the argument array flow into every
                    // parameter (collected in the site's spread cell by the
                    // generator).
                    if let Some(sp) = spread {
                        let n = self.funcs[f.0 as usize].param_count;
                        for i in 0..n {
                            let pc = self.cell(CellKind::Param(f, i));
                            self.add_edge(sp, pc);
                        }
                        self.wire_rest(f, &[], sp);
                    }
                    let rc = self.cell(CellKind::Ret(f));
                    self.add_edge(rc, result);
                }
            }
            Constraint::ProtoFor { child } => {
                self.add_proto(*child, t);
            }
        }
    }

    /// Property read on token `t`: consult the token's field and its
    /// prototype chain, replaying when new prototype links appear.
    fn apply_load(&mut self, t: Token, prop: Sym, dst: CellId) {
        // Builtin namespaces: `Math.floor` → Builtin("Math.floor").
        if let TokenData::Builtin(b) = self.data(t) {
            let name = self.interner.name(*b).to_string();
            let pname = self.interner.name(prop).to_string();
            if !pname.starts_with('\u{0}') {
                let sub = self.interner.intern(&format!("{name}.{pname}"));
                let tok = self.token(TokenData::Builtin(sub));
                self.add_token(dst, tok);
            }
        }
        self.loads_by_token
            .entry(t)
            .or_default()
            .push((prop, dst));
        // Field of t and of every ancestor.
        let chain = self.proto_chain(t);
        for a in chain {
            let f = self.cell(CellKind::Field(a, prop));
            self.add_edge(f, dst);
        }
    }

    /// The token and its transitive prototypes (cycle-safe).
    fn proto_chain(&self, t: Token) -> Vec<Token> {
        let mut out = Vec::new();
        let mut seen = HashSet::new();
        let mut stack = vec![t];
        while let Some(x) = stack.pop() {
            if !seen.insert(x) {
                continue;
            }
            out.push(x);
            if let Some(ps) = self.protos.get(&x) {
                stack.extend(ps.iter().copied());
            }
        }
        out
    }

    /// Adds a prototype link `child → parent`, replaying recorded loads of
    /// `child` and of its transitive children.
    pub fn add_proto(&mut self, child: Token, parent: Token) {
        if child == parent {
            return;
        }
        let ps = self.protos.entry(child).or_default();
        if ps.contains(&parent) {
            return;
        }
        ps.push(parent);
        self.inv_protos.entry(parent).or_default().push(child);

        // Tokens whose chains pass through `child`.
        let mut affected = Vec::new();
        let mut seen = HashSet::new();
        let mut stack = vec![child];
        while let Some(x) = stack.pop() {
            if !seen.insert(x) {
                continue;
            }
            affected.push(x);
            if let Some(kids) = self.inv_protos.get(&x) {
                stack.extend(kids.iter().copied());
            }
        }
        // Replay their loads against the new ancestor chain.
        let parent_chain = self.proto_chain(parent);
        for x in affected {
            let loads = self
                .loads_by_token
                .get(&x)
                .cloned()
                .unwrap_or_default();
            for (prop, dst) in loads {
                for a in &parent_chain {
                    let f = self.cell(CellKind::Field(*a, prop));
                    self.add_edge(f, dst);
                }
            }
        }
    }

    /// Resolves a call-site callee token (rule for `E(E')` in Figure 3,
    /// plus builtin models).
    fn resolve_call(&mut self, site: u32, t: Token) {
        match self.data(t).clone() {
            TokenData::Func(f) => self.call_user_function(site, f),
            TokenData::Builtin(name) => {
                let name = self.interner.name(name).to_string();
                self.call_builtin(site, &name);
            }
            _ => {}
        }
    }

    fn call_user_function(&mut self, site: u32, f: FuncIdx) {
        self.call_edges.insert((site, f));
        let (args, spread, this_cell, result, is_new, new_token, loc) = {
            let s = &self.sites[site as usize];
            (
                s.args.clone(),
                s.spread,
                s.this_cell,
                s.result,
                s.is_new,
                s.new_token,
                s.loc,
            )
        };
        let n = self.funcs[f.0 as usize].param_count as usize;
        for (i, a) in args.iter().enumerate() {
            if i < n {
                let pc = self.cell(CellKind::Param(f, i as u16));
                self.add_edge(*a, pc);
            }
        }
        if let Some(sp) = spread {
            for i in 0..n {
                let pc = self.cell(CellKind::Param(f, i as u16));
                self.add_edge(sp, pc);
            }
        }
        // Extra args → rest array and `arguments`.
        let extra: Vec<CellId> = args.iter().skip(n).copied().collect();
        let sp = spread.unwrap_or_else(|| self.tmp());
        self.wire_rest(f, &extra, sp);
        // All args → arguments object elements.
        let args_tok = self.token(TokenData::Args(f));
        let elems = self.cell(CellKind::Field(args_tok, self.elems_sym));
        for a in &args {
            self.add_edge(*a, elems);
        }
        if is_new {
            // Fresh abstract object per new-site, linked to the function's
            // prototype property.
            let newtok = new_token.unwrap_or_else(|| self.token(TokenData::Obj(loc)));
            self.add_token(result, newtok);
            let tc = self.cell(CellKind::This(f));
            self.add_token(tc, newtok);
            let ftok = self.token(TokenData::Func(f));
            let protofield = self.cell(CellKind::Field(ftok, self.prototype_sym));
            self.add_constraint(protofield, Constraint::ProtoFor { child: newtok });
        } else {
            if let Some(tc) = this_cell {
                let this = self.cell(CellKind::This(f));
                self.add_edge(tc, this);
            }
            let rc = self.cell(CellKind::Ret(f));
            self.add_edge(rc, result);
        }
    }

    fn wire_rest(&mut self, f: FuncIdx, extra: &[CellId], spread: CellId) {
        if !self.funcs[f.0 as usize].has_rest {
            return;
        }
        let rest_tok = self.token(TokenData::Rest(f));
        let elems = self.cell(CellKind::Field(rest_tok, self.elems_sym));
        for a in extra {
            self.add_edge(*a, elems);
        }
        self.add_edge(spread, elems);
    }

    /// Models of builtin callees.
    fn call_builtin(&mut self, site: u32, name: &str) {
        let (args, result, loc, file, is_new, lit_arg0) = {
            let s = &self.sites[site as usize];
            (
                s.args.clone(),
                s.result,
                s.loc,
                s.file,
                s.is_new,
                s.lit_arg0.clone(),
            )
        };
        let last = name.rsplit('.').next().unwrap_or(name);
        match name {
            "require" => {
                let mut targets: Vec<String> = Vec::new();
                if let Some(spec) = &lit_arg0 {
                    if let Some(path) = resolve_module(&self.paths, file, spec) {
                        targets.push(path);
                    } else if !spec.starts_with('.') && !spec.starts_with('/') {
                        // Core module: opaque builtin namespace.
                        let sym = self.interner.intern(&format!("module:{spec}"));
                        let tok = self.token(TokenData::Builtin(sym));
                        self.add_token(result, tok);
                    }
                }
                if let Some(hinted) = self.module_hints.get(&loc).cloned() {
                    targets.extend(hinted);
                }
                for path in targets {
                    if let Some(idx) = self.paths.iter().position(|p| *p == path) {
                        let fid = FileId(idx as u32);
                        self.module_edges.insert((site, fid));
                        let mobj = self.token(TokenData::ModuleObj(fid));
                        let exports_sym = self.interner.intern("exports");
                        let f = self.cell(CellKind::Field(mobj, exports_sym));
                        self.add_edge(f, result);
                    }
                }
            }
            "Object.create" => {
                let newtok = self.token(TokenData::Obj(loc));
                self.add_token(result, newtok);
                if let Some(a0) = args.first() {
                    self.add_constraint(*a0, Constraint::ProtoFor { child: newtok });
                }
            }
            "Object.assign"
            | "Object.defineProperty"
            | "Object.defineProperties"
            | "Object.freeze"
            | "Object.seal"
            | "Object.setPrototypeOf" => {
                if let Some(a0) = args.first() {
                    self.add_edge(*a0, result);
                }
            }
            "Object.getPrototypeOf" => {}
            "Promise.resolve" => {
                if let Some(a0) = args.first() {
                    self.add_edge(*a0, result);
                }
            }
            _ => {
                // Error constructors and similar object-producing builtins
                // give the site an abstract object.
                if is_new
                    || matches!(
                        last,
                        "Error" | "TypeError" | "RangeError" | "SyntaxError" | "Date"
                    )
                {
                    let newtok = self.token(TokenData::Obj(loc));
                    self.add_token(result, newtok);
                }
                // Generic conservative behavior: any function argument may
                // be invoked as a callback with unknown arguments.
                for a in &args {
                    self.add_constraint(
                        *a,
                        Constraint::Callback {
                            site,
                            p0: None,
                            p1: None,
                            this0: None,
                            ret: None,
                        },
                    );
                }
            }
        }
    }
}

/// Resolves a module specifier the same way the interpreter does.
pub fn resolve_module(paths: &[String], from: FileId, spec: &str) -> Option<String> {
    let find = |p: &str| paths.iter().find(|q| *q == p).cloned();
    let with_suffixes = |base: &str| -> Option<String> {
        find(base)
            .or_else(|| find(&format!("{base}.js")))
            .or_else(|| find(&format!("{base}/index.js")))
            .or_else(|| find(&format!("{base}.json")))
    };
    let from_path = paths.get(from.index())?;
    if spec.starts_with("./") || spec.starts_with("../") || spec.starts_with('/') {
        let dir = match from_path.rfind('/') {
            Some(i) => &from_path[..i],
            None => "",
        };
        let joined = normalize(&if dir.is_empty() {
            spec.to_string()
        } else {
            format!("{dir}/{spec}")
        });
        return with_suffixes(&joined);
    }
    let mut dir = match from_path.rfind('/') {
        Some(i) => from_path[..i].to_string(),
        None => String::new(),
    };
    loop {
        let candidate = if dir.is_empty() {
            format!("node_modules/{spec}")
        } else {
            format!("{dir}/node_modules/{spec}")
        };
        if let Some(p) = with_suffixes(&candidate) {
            return Some(p);
        }
        if dir.is_empty() {
            return None;
        }
        dir = match dir.rfind('/') {
            Some(i) => dir[..i].to_string(),
            None => String::new(),
        };
    }
}

fn normalize(path: &str) -> String {
    let mut out: Vec<&str> = Vec::new();
    for seg in path.split('/') {
        match seg {
            "" | "." => {}
            ".." => {
                out.pop();
            }
            s => out.push(s),
        }
    }
    out.join("/")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn loc(line: u32) -> Loc {
        Loc::new(FileId(0), line, 1)
    }

    #[test]
    fn basic_propagation() {
        let mut s = Solver::new(vec![]);
        let a = s.tmp();
        let b = s.tmp();
        let c = s.tmp();
        let t = s.token(TokenData::Obj(loc(1)));
        s.add_token(a, t);
        s.add_edge(a, b);
        s.add_edge(b, c);
        s.solve();
        assert_eq!(s.tokens_of(c), vec![t]);
    }

    #[test]
    fn edges_added_after_tokens_propagate() {
        let mut s = Solver::new(vec![]);
        let a = s.tmp();
        let b = s.tmp();
        let t = s.token(TokenData::Obj(loc(1)));
        s.add_token(a, t);
        s.solve();
        s.add_edge(a, b);
        s.solve();
        assert_eq!(s.tokens_of(b), vec![t]);
    }

    #[test]
    fn load_store_through_fields() {
        let mut s = Solver::new(vec![]);
        let objcell = s.tmp();
        let val = s.tmp();
        let out = s.tmp();
        let obj = s.token(TokenData::Obj(loc(1)));
        let v = s.token(TokenData::Obj(loc(2)));
        let p = s.interner.intern("p");
        s.add_token(objcell, obj);
        s.add_token(val, v);
        s.add_constraint(objcell, Constraint::Store { prop: p, src: val });
        s.add_constraint(objcell, Constraint::Load { prop: p, dst: out });
        s.solve();
        assert_eq!(s.tokens_of(out), vec![v]);
    }

    #[test]
    fn prototype_chain_reads() {
        let mut s = Solver::new(vec![]);
        let child_cell = s.tmp();
        let out = s.tmp();
        let parent = s.token(TokenData::Obj(loc(10)));
        let child = s.token(TokenData::Obj(loc(11)));
        let v = s.token(TokenData::Obj(loc(12)));
        let m = s.interner.intern("m");
        // parent.m = v
        let f = s.cell(CellKind::Field(parent, m));
        s.add_token(f, v);
        // read child.m BEFORE the proto link exists
        s.add_token(child_cell, child);
        s.add_constraint(child_cell, Constraint::Load { prop: m, dst: out });
        s.solve();
        assert!(s.tokens_of(out).is_empty());
        // add proto link: replay must fire
        s.add_proto(child, parent);
        s.solve();
        assert_eq!(s.tokens_of(out), vec![v]);
    }

    #[test]
    fn builtin_member_paths() {
        let mut s = Solver::new(vec![]);
        let obj = s.interner.intern("Object");
        let t = s.token(TokenData::Builtin(obj));
        let cell = s.tmp();
        let out = s.tmp();
        let create = s.interner.intern("create");
        s.add_token(cell, t);
        s.add_constraint(cell, Constraint::Load { prop: create, dst: out });
        s.solve();
        let toks = s.tokens_of(out);
        assert_eq!(toks.len(), 1);
        assert!(matches!(
            s.data(toks[0]),
            TokenData::Builtin(b) if s.interner.name(*b) == "Object.create"
        ));
    }

    #[test]
    fn module_resolution() {
        let paths = vec![
            "index.js".to_string(),
            "lib/util.js".to_string(),
            "node_modules/dep/index.js".to_string(),
        ];
        assert_eq!(
            resolve_module(&paths, FileId(0), "./lib/util"),
            Some("lib/util.js".to_string())
        );
        assert_eq!(
            resolve_module(&paths, FileId(1), "../index.js"),
            Some("index.js".to_string())
        );
        assert_eq!(
            resolve_module(&paths, FileId(0), "dep"),
            Some("node_modules/dep/index.js".to_string())
        );
        assert_eq!(resolve_module(&paths, FileId(0), "missing"), None);
    }
}
