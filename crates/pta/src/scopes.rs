//! Lexical scope resolution.
//!
//! Maps every identifier reference (and declaration) to a `VarId` so the
//! constraint generator can use one points-to cell per variable binding
//! (context-insensitive). Unresolved names map to shared per-name global
//! variables, as in sloppy-mode JavaScript.

use aji_ast::ast::*;
use aji_ast::{FileId, NodeId};
use std::collections::HashMap;

/// Identifier of a resolved variable binding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VarId(pub u32);

/// What a variable binding is.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VarInfo {
    /// Ordinary lexical binding (name kept for diagnostics).
    Local(String),
    /// Global (unresolved) name, shared project-wide.
    Global(String),
    /// Per-module magic binding (`module`, `exports`, `require`, ...).
    ModuleMagic(FileId, String),
}

/// Output of scope resolution for a whole project.
#[derive(Debug, Default)]
pub struct Resolution {
    /// Reference/declaration node → variable.
    pub refs: HashMap<NodeId, VarId>,
    /// Variable metadata, indexed by `VarId`.
    pub vars: Vec<VarInfo>,
    /// Function/class declaration node → the variable its name binds.
    decls: HashMap<NodeId, VarId>,
    /// Named function expression node → its self-reference binding.
    selfs: HashMap<NodeId, VarId>,
    /// Function node → its `arguments` binding.
    args: HashMap<NodeId, VarId>,
    globals: HashMap<String, VarId>,
}

impl Resolution {
    /// The variable a node refers to, if resolved.
    pub fn var_of(&self, node: NodeId) -> Option<VarId> {
        self.refs.get(&node).copied()
    }

    /// The global variable cell for a name (created on demand by the
    /// resolver; read-only here).
    pub fn global(&self, name: &str) -> Option<VarId> {
        self.globals.get(name).copied()
    }

    /// Number of variables.
    pub fn var_count(&self) -> usize {
        self.vars.len()
    }

    /// The variable bound by a function/class *declaration*'s name.
    pub fn decl_of(&self, node: NodeId) -> Option<VarId> {
        self.decls.get(&node).copied()
    }

    /// The self-reference binding of a named function expression.
    pub fn self_of(&self, node: NodeId) -> Option<VarId> {
        self.selfs.get(&node).copied()
    }

    /// The `arguments` binding of a function.
    pub fn arguments_of(&self, node: NodeId) -> Option<VarId> {
        self.args.get(&node).copied()
    }

    fn fresh(&mut self, info: VarInfo) -> VarId {
        let id = VarId(self.vars.len() as u32);
        self.vars.push(info);
        id
    }

    fn global_var(&mut self, name: &str) -> VarId {
        if let Some(v) = self.globals.get(name) {
            return *v;
        }
        let v = self.fresh(VarInfo::Global(name.to_string()));
        self.globals.insert(name.to_string(), v);
        v
    }
}

/// Magic names bound in every module scope.
pub const MODULE_MAGIC: [&str; 5] = ["module", "exports", "require", "__filename", "__dirname"];

/// Resolves all modules of a project. `modules[i]` must correspond to
/// `FileId(i)`.
pub fn resolve(modules: &[std::rc::Rc<Module>]) -> Resolution {
    let mut res = Resolution::default();
    for (i, m) in modules.iter().enumerate() {
        let file = FileId(i as u32);
        let mut r = Resolver {
            res: &mut res,
            scopes: Vec::new(),
        };
        r.push_scope();
        for name in MODULE_MAGIC {
            let v = r
                .res
                .fresh(VarInfo::ModuleMagic(file, name.to_string()));
            r.declare_raw(name, v);
        }
        r.hoist_stmts(&m.body, true);
        for s in &m.body {
            r.stmt(s);
        }
        r.pop_scope();
    }
    res
}

struct Resolver<'a> {
    res: &'a mut Resolution,
    scopes: Vec<HashMap<String, VarId>>,
}

impl<'a> Resolver<'a> {
    fn push_scope(&mut self) {
        self.scopes.push(HashMap::new());
    }

    fn pop_scope(&mut self) {
        self.scopes.pop();
    }

    fn declare_raw(&mut self, name: &str, v: VarId) {
        self.scopes
            .last_mut()
            .expect("scope stack")
            .insert(name.to_string(), v);
    }

    fn declare(&mut self, name: &str) -> VarId {
        if let Some(v) = self.scopes.last().and_then(|s| s.get(name)) {
            return *v;
        }
        let v = self.res.fresh(VarInfo::Local(name.to_string()));
        self.declare_raw(name, v);
        v
    }

    fn lookup(&mut self, name: &str) -> VarId {
        for scope in self.scopes.iter().rev() {
            if let Some(v) = scope.get(name) {
                return *v;
            }
        }
        self.res.global_var(name)
    }

    /// Hoists declarations for a statement list. With `function_scope`,
    /// `var` names are declared here (the caller is a function or module
    /// body); otherwise only block-scoped names are.
    fn hoist_stmts(&mut self, stmts: &[Stmt], function_scope: bool) {
        if function_scope {
            let mut names = Vec::new();
            collect_var_names(stmts, &mut names);
            for n in names {
                self.declare(&n);
            }
        }
        for s in stmts {
            match &s.kind {
                StmtKind::FuncDecl(f) => {
                    if let Some(n) = &f.name {
                        let v = self.declare(n);
                        self.res.decls.insert(f.id, v);
                    }
                }
                StmtKind::ClassDecl(c) => {
                    if let Some(n) = &c.name {
                        let v = self.declare(n);
                        self.res.decls.insert(c.id, v);
                    }
                }
                StmtKind::VarDecl(d) if d.kind != VarKind::Var => {
                    for decl in &d.decls {
                        self.declare_pattern_names(&decl.name);
                    }
                }
                _ => {}
            }
        }
    }

    fn declare_pattern_names(&mut self, p: &Pattern) {
        match &p.kind {
            PatternKind::Ident(n) => {
                let v = self.declare(n);
                self.res.refs.insert(p.id, v);
            }
            PatternKind::Array { elems, rest } => {
                for e in elems.iter().flatten() {
                    self.declare_pattern_names(e);
                }
                if let Some(r) = rest {
                    self.declare_pattern_names(r);
                }
            }
            PatternKind::Object { props, rest } => {
                for pr in props {
                    if let PropName::Computed(e) = &pr.key {
                        self.expr(e);
                    }
                    self.declare_pattern_names(&pr.value);
                }
                if let Some(r) = rest {
                    self.declare_pattern_names(r);
                }
            }
            PatternKind::Assign { pat, default } => {
                self.declare_pattern_names(pat);
                self.expr(default);
            }
        }
    }

    /// Re-resolves a pattern's idents against existing bindings (for
    /// assignment-style destructuring).
    fn resolve_pattern_refs(&mut self, p: &Pattern) {
        match &p.kind {
            PatternKind::Ident(n) => {
                let v = self.lookup(n);
                self.res.refs.insert(p.id, v);
            }
            PatternKind::Array { elems, rest } => {
                for e in elems.iter().flatten() {
                    self.resolve_pattern_refs(e);
                }
                if let Some(r) = rest {
                    self.resolve_pattern_refs(r);
                }
            }
            PatternKind::Object { props, rest } => {
                for pr in props {
                    if let PropName::Computed(e) = &pr.key {
                        self.expr(e);
                    }
                    self.resolve_pattern_refs(&pr.value);
                }
                if let Some(r) = rest {
                    self.resolve_pattern_refs(r);
                }
            }
            PatternKind::Assign { pat, default } => {
                self.resolve_pattern_refs(pat);
                self.expr(default);
            }
        }
    }

    fn stmt(&mut self, s: &Stmt) {
        match &s.kind {
            StmtKind::Expr(e) => self.expr(e),
            StmtKind::VarDecl(d) => {
                for decl in &d.decls {
                    // Names were hoisted; bind the pattern refs and walk
                    // the initializer.
                    self.declare_pattern_names(&decl.name);
                    if let Some(init) = &decl.init {
                        self.expr(init);
                    }
                }
            }
            StmtKind::FuncDecl(f) => self.function(f),
            StmtKind::ClassDecl(c) => self.class(c),
            StmtKind::Return(e) => {
                if let Some(e) = e {
                    self.expr(e);
                }
            }
            StmtKind::If { test, cons, alt } => {
                self.expr(test);
                self.stmt_in_block(cons);
                if let Some(a) = alt {
                    self.stmt_in_block(a);
                }
            }
            StmtKind::While { test, body } => {
                self.expr(test);
                self.stmt_in_block(body);
            }
            StmtKind::DoWhile { body, test } => {
                self.stmt_in_block(body);
                self.expr(test);
            }
            StmtKind::For {
                init,
                test,
                update,
                body,
            } => {
                self.push_scope();
                match init {
                    Some(ForInit::VarDecl(d)) => {
                        for decl in &d.decls {
                            self.declare_pattern_names(&decl.name);
                            if let Some(i) = &decl.init {
                                self.expr(i);
                            }
                        }
                    }
                    Some(ForInit::Expr(e)) => self.expr(e),
                    None => {}
                }
                if let Some(t) = test {
                    self.expr(t);
                }
                if let Some(u) = update {
                    self.expr(u);
                }
                self.stmt_in_block(body);
                self.pop_scope();
            }
            StmtKind::ForIn { head, obj, body } => {
                self.push_scope();
                match head {
                    ForHead::VarDecl { pat, .. } => self.declare_pattern_names(pat),
                    ForHead::Target(e) => self.expr(e),
                }
                self.expr(obj);
                self.stmt_in_block(body);
                self.pop_scope();
            }
            StmtKind::ForOf { head, iter, body } => {
                self.push_scope();
                match head {
                    ForHead::VarDecl { pat, .. } => self.declare_pattern_names(pat),
                    ForHead::Target(e) => self.expr(e),
                }
                self.expr(iter);
                self.stmt_in_block(body);
                self.pop_scope();
            }
            StmtKind::Block(body) => {
                self.push_scope();
                self.hoist_stmts(body, false);
                for s in body {
                    self.stmt(s);
                }
                self.pop_scope();
            }
            StmtKind::Empty
            | StmtKind::Break(_)
            | StmtKind::Continue(_)
            | StmtKind::Debugger => {}
            StmtKind::Labeled { body, .. } => self.stmt(body),
            StmtKind::Switch { disc, cases } => {
                self.expr(disc);
                self.push_scope();
                for c in cases {
                    self.hoist_stmts(&c.body, false);
                }
                for c in cases {
                    if let Some(t) = &c.test {
                        self.expr(t);
                    }
                    for s in &c.body {
                        self.stmt(s);
                    }
                }
                self.pop_scope();
            }
            StmtKind::Throw(e) => self.expr(e),
            StmtKind::Try {
                block,
                catch,
                finally,
            } => {
                self.push_scope();
                self.hoist_stmts(block, false);
                for s in block {
                    self.stmt(s);
                }
                self.pop_scope();
                if let Some(c) = catch {
                    self.push_scope();
                    if let Some(p) = &c.param {
                        self.declare_pattern_names(p);
                    }
                    self.hoist_stmts(&c.body, false);
                    for s in &c.body {
                        self.stmt(s);
                    }
                    self.pop_scope();
                }
                if let Some(f) = finally {
                    self.push_scope();
                    self.hoist_stmts(f, false);
                    for s in f {
                        self.stmt(s);
                    }
                    self.pop_scope();
                }
            }
        }
    }

    fn stmt_in_block(&mut self, s: &Stmt) {
        match &s.kind {
            StmtKind::Block(_) => self.stmt(s),
            _ => {
                self.push_scope();
                self.stmt(s);
                self.pop_scope();
            }
        }
    }

    fn function(&mut self, f: &Function) {
        self.push_scope();
        if let Some(n) = &f.name {
            // Named function expressions can refer to themselves.
            let v = self.declare(n);
            self.res.selfs.insert(f.id, v);
        }
        for p in &f.params {
            self.declare_pattern_names(&p.pat);
            if let Some(d) = &p.default {
                self.expr(d);
            }
        }
        if let Some(r) = &f.rest {
            self.declare_pattern_names(r);
        }
        // `arguments` is a binding of its own.
        let av = self.declare("arguments");
        self.res.args.insert(f.id, av);
        match &f.body {
            FuncBody::Block(stmts) => {
                self.hoist_stmts(stmts, true);
                for s in stmts {
                    self.stmt(s);
                }
            }
            FuncBody::Expr(e) => self.expr(e),
        }
        self.pop_scope();
    }

    fn class(&mut self, c: &Class) {
        if let Some(s) = &c.super_class {
            self.expr(s);
        }
        for m in &c.members {
            if let PropName::Computed(e) = &m.key {
                self.expr(e);
            }
            match &m.kind {
                ClassMemberKind::Constructor(f) => self.function(f),
                ClassMemberKind::Method { func, .. } => self.function(func),
                ClassMemberKind::Field(Some(e)) => self.expr(e),
                ClassMemberKind::Field(None) => {}
            }
        }
    }

    fn expr(&mut self, e: &Expr) {
        match &e.kind {
            ExprKind::Ident(name) => {
                if name == "super" {
                    return;
                }
                let v = self.lookup(name);
                self.res.refs.insert(e.id, v);
            }
            ExprKind::Function(f) | ExprKind::Arrow(f) => self.function(f),
            ExprKind::Class(c) => self.class(c),
            ExprKind::Assign { target, value, .. } => {
                match target {
                    AssignTarget::Ident { id, name, .. } => {
                        let v = self.lookup(name);
                        self.res.refs.insert(*id, v);
                    }
                    AssignTarget::Member(m) => self.expr(m),
                    AssignTarget::Pattern(p) => self.resolve_pattern_refs(p),
                }
                self.expr(value);
            }
            ExprKind::Object(props) => {
                for p in props {
                    match p {
                        Property::KeyValue { key, value } => {
                            if let PropName::Computed(k) = key {
                                self.expr(k);
                            }
                            self.expr(value);
                        }
                        Property::Method { key, func, .. } => {
                            if let PropName::Computed(k) = key {
                                self.expr(k);
                            }
                            self.function(func);
                        }
                        Property::Spread(e) => self.expr(e),
                    }
                }
            }
            _ => {
                // Generic recursion over children.
                use aji_ast::visit::{walk_expr, Visit};
                struct Walk<'b, 'c>(&'b mut Resolver<'c>);
                impl Visit for Walk<'_, '_> {
                    fn visit_expr(&mut self, e: &Expr) {
                        self.0.expr(e);
                    }
                    fn visit_function(&mut self, f: &Function) {
                        self.0.function(f);
                    }
                    fn visit_class(&mut self, c: &Class) {
                        self.0.class(c);
                    }
                    fn visit_pattern(&mut self, p: &Pattern) {
                        self.0.resolve_pattern_refs(p);
                    }
                }
                walk_expr(&mut Walk(self), e);
            }
        }
    }
}

/// Collects `var` names without entering nested functions.
fn collect_var_names(stmts: &[Stmt], out: &mut Vec<String>) {
    for s in stmts {
        collect_stmt(s, out);
    }
}

fn collect_stmt(s: &Stmt, out: &mut Vec<String>) {
    match &s.kind {
        StmtKind::VarDecl(d) if d.kind == VarKind::Var => {
            for decl in &d.decls {
                pattern_names(&decl.name, out);
            }
        }
        StmtKind::If { cons, alt, .. } => {
            collect_stmt(cons, out);
            if let Some(a) = alt {
                collect_stmt(a, out);
            }
        }
        StmtKind::While { body, .. } | StmtKind::DoWhile { body, .. } => collect_stmt(body, out),
        StmtKind::For { init, body, .. } => {
            if let Some(ForInit::VarDecl(d)) = init {
                if d.kind == VarKind::Var {
                    for decl in &d.decls {
                        pattern_names(&decl.name, out);
                    }
                }
            }
            collect_stmt(body, out);
        }
        StmtKind::ForIn { head, body, .. } | StmtKind::ForOf { head, body, .. } => {
            if let ForHead::VarDecl {
                kind: VarKind::Var,
                pat,
            } = head
            {
                pattern_names(pat, out);
            }
            collect_stmt(body, out);
        }
        StmtKind::Block(body) => collect_var_names(body, out),
        StmtKind::Labeled { body, .. } => collect_stmt(body, out),
        StmtKind::Switch { cases, .. } => {
            for c in cases {
                collect_var_names(&c.body, out);
            }
        }
        StmtKind::Try {
            block,
            catch,
            finally,
        } => {
            collect_var_names(block, out);
            if let Some(c) = catch {
                collect_var_names(&c.body, out);
            }
            if let Some(f) = finally {
                collect_var_names(f, out);
            }
        }
        _ => {}
    }
}

fn pattern_names(p: &Pattern, out: &mut Vec<String>) {
    match &p.kind {
        PatternKind::Ident(n) => out.push(n.clone()),
        PatternKind::Array { elems, rest } => {
            for e in elems.iter().flatten() {
                pattern_names(e, out);
            }
            if let Some(r) = rest {
                pattern_names(r, out);
            }
        }
        PatternKind::Object { props, rest } => {
            for pr in props {
                pattern_names(&pr.value, out);
            }
            if let Some(r) = rest {
                pattern_names(r, out);
            }
        }
        PatternKind::Assign { pat, .. } => pattern_names(pat, out),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aji_ast::{NodeIdGen, Project};

    fn resolve_src(src: &str) -> (Vec<std::rc::Rc<Module>>, Resolution) {
        let mut p = Project::new("t");
        p.add_file("index.js", src);
        let parsed = aji_parser::parse_project(&p).unwrap();
        let res = resolve(&parsed.modules);
        (parsed.modules, res)
    }

    fn find_ident(m: &Module, name: &str) -> Vec<NodeId> {
        use aji_ast::visit::{walk_expr, Visit};
        struct F<'a>(&'a str, Vec<NodeId>);
        impl Visit for F<'_> {
            fn visit_expr(&mut self, e: &Expr) {
                if let ExprKind::Ident(n) = &e.kind {
                    if n == self.0 {
                        self.1.push(e.id);
                    }
                }
                walk_expr(self, e);
            }
        }
        let mut f = F(name, Vec::new());
        use aji_ast::visit::walk_module;
        walk_module(&mut f, m);
        f.1
    }

    #[test]
    fn closure_references_resolve_to_same_var() {
        let (ms, res) = resolve_src(
            "var x = 1; function f() { return x; } function g() { return x; }",
        );
        let refs = find_ident(&ms[0], "x");
        assert_eq!(refs.len(), 2);
        let v1 = res.var_of(refs[0]).unwrap();
        let v2 = res.var_of(refs[1]).unwrap();
        assert_eq!(v1, v2);
        assert!(matches!(res.vars[v1.0 as usize], VarInfo::Local(_)));
    }

    #[test]
    fn shadowing_creates_distinct_vars() {
        let (ms, res) = resolve_src("var x = 1; function f(x) { return x; } var y = x;");
        let refs = find_ident(&ms[0], "x");
        // `return x` resolves to the parameter, `var y = x` to the outer.
        assert_eq!(refs.len(), 2);
        assert_ne!(res.var_of(refs[0]), res.var_of(refs[1]));
    }

    #[test]
    fn unresolved_names_are_globals() {
        let (ms, res) = resolve_src("missing(1);");
        let refs = find_ident(&ms[0], "missing");
        let v = res.var_of(refs[0]).unwrap();
        assert!(matches!(res.vars[v.0 as usize], VarInfo::Global(_)));
    }

    #[test]
    fn module_magic_vars() {
        let (ms, res) = resolve_src("module.exports = exports;");
        let m_refs = find_ident(&ms[0], "module");
        let v = res.var_of(m_refs[0]).unwrap();
        assert!(matches!(
            res.vars[v.0 as usize],
            VarInfo::ModuleMagic(_, ref n) if n == "module"
        ));
    }

    #[test]
    fn let_is_block_scoped() {
        let (ms, res) = resolve_src("let a = 1; { let a = 2; use(a); } use2(a);");
        let refs = find_ident(&ms[0], "a");
        assert_eq!(refs.len(), 2);
        assert_ne!(res.var_of(refs[0]), res.var_of(refs[1]));
    }

    #[test]
    fn var_hoists_through_blocks() {
        let (ms, res) = resolve_src("{ var a = 1; } use(a);");
        let refs = find_ident(&ms[0], "a");
        let v = res.var_of(refs[0]).unwrap();
        assert!(matches!(res.vars[v.0 as usize], VarInfo::Local(_)));
    }

    #[test]
    fn catch_param_is_scoped() {
        let (_ms, res) = resolve_src("try { f(); } catch (e) { g(e); }");
        // No panic, e resolves locally — enough that resolution exists.
        assert!(res.var_count() > 0);
    }

    #[test]
    fn unused_generator_is_fine() {
        let mut gen = NodeIdGen::new();
        let _ = gen.fresh();
        // Smoke check of resolve on empty input.
        let res = resolve(&[]);
        assert_eq!(res.var_count(), 0);
    }
}
