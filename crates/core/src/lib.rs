//! End-to-end analysis pipeline for the *aji* reproduction of *Reducing
//! Static Analysis Unsoundness with Approximate Interpretation*
//! (PLDI 2024).
//!
//! This facade ties the substrates together the way the paper's
//! experiments do:
//!
//! 1. **baseline** static analysis ([`aji_pta::analyze`] without hints);
//! 2. **approximate interpretation** ([`aji_approx::approximate_interpret`])
//!    producing hints;
//! 3. **extended** static analysis (hints applied via \[DPR\]/\[DPW\]);
//! 4. optionally, a **dynamic call graph** from concretely executing the
//!    project's test driver (the ground truth for recall/precision);
//! 5. optionally, the **vulnerability reachability** study over the
//!    project's annotations.
//!
//! # Example
//!
//! ```
//! use aji::{run_benchmark, PipelineOptions};
//! use aji_ast::Project;
//!
//! # fn main() -> Result<(), aji::PipelineError> {
//! let mut project = Project::new("demo");
//! project.add_file(
//!     "index.js",
//!     "var api = {};\n\
//!      ['go'].forEach(function(m) { api[m] = function() {}; });\n\
//!      api.go();",
//! );
//! let report = run_benchmark(&project, &PipelineOptions::default())?;
//! assert!(report.extended.call_edges > report.baseline.call_edges);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

use aji_approx::{approximate_interpret_parsed, ApproxOptions, ApproxResult, Hints};
use aji_ast::{Loc, Project};
use aji_interp::{DynCallGraph, Interp, InterpOptions};
use aji_obs::ObsReport;
use aji_parser::ParsedProject;
use aji_pta::{analyze_parsed, Accuracy, Analysis, AnalysisOptions, CgMetrics};
use aji_support::{Json, ToJson};
use std::cell::RefCell;
use std::collections::BTreeSet;
use std::fmt;
use std::rc::Rc;
use std::sync::Arc;

pub use aji_approx::ApproxStats;
pub use aji_pta::CallGraph;

/// Errors from the pipeline.
#[derive(Debug)]
pub enum PipelineError {
    /// A project file failed to parse.
    Parse(aji_parser::ParseError),
    /// The dynamic call-graph run failed in a way that prevents any
    /// measurement (the driver itself could not start).
    Dynamic(String),
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::Parse(e) => write!(f, "parse error: {e}"),
            PipelineError::Dynamic(m) => write!(f, "dynamic analysis error: {m}"),
        }
    }
}

impl std::error::Error for PipelineError {}

impl From<aji_parser::ParseError> for PipelineError {
    fn from(e: aji_parser::ParseError) -> Self {
        PipelineError::Parse(e)
    }
}

/// Options for [`run_benchmark`].
#[derive(Debug, Clone)]
pub struct PipelineOptions {
    /// Pre-analysis options.
    pub approx: ApproxOptions,
    /// Hint rules applied in the extended analysis.
    pub analysis: AnalysisOptions,
    /// Produce a dynamic call graph by running the project's test driver
    /// (or main module) concretely, and compute recall/precision.
    pub dynamic_cg: bool,
    /// Interpreter options for the dynamic-call-graph run.
    pub dynamic_interp: InterpOptions,
}

impl Default for PipelineOptions {
    fn default() -> Self {
        PipelineOptions {
            approx: ApproxOptions::default(),
            analysis: AnalysisOptions::extended(),
            dynamic_cg: false,
            dynamic_interp: InterpOptions::default(),
        }
    }
}

impl PipelineOptions {
    /// Options that also produce a dynamic call graph.
    pub fn with_dynamic_cg() -> Self {
        PipelineOptions {
            dynamic_cg: true,
            ..PipelineOptions::default()
        }
    }

    /// A stable digest of every result-affecting option, for cache keys.
    ///
    /// The `aji serve` hint store keys cached hint sets and analysis
    /// responses by `(source digest, options fingerprint)`; two
    /// [`PipelineOptions`] with the same fingerprint are guaranteed to
    /// produce byte-identical [`BenchmarkReport::metrics_json`] output on
    /// the same sources. Engine-selection knobs that are observationally
    /// neutral (the bytecode VM toggle) do not participate — see
    /// [`aji_interp::InterpOptions::fingerprint_into`].
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        // Fixed domain-separation seed: pipeline fingerprints never
        // collide with source-content digests even for crafted sources.
        let mut h = aji_support::Fnv64::new(0xA110_917E_11FE);
        self.approx.fingerprint_into(&mut h);
        self.analysis.fingerprint_into(&mut h);
        h.write_u64(u64::from(self.dynamic_cg));
        self.dynamic_interp.fingerprint_into(&mut h);
        h.finish()
    }
}

/// Accuracy of one analysis against the dynamic call graph.
#[derive(Debug, Clone)]
pub struct AccuracyPair {
    /// Baseline recall/precision.
    pub baseline: Accuracy,
    /// Extended recall/precision.
    pub extended: Accuracy,
    /// Number of dynamic call edges.
    pub dynamic_edges: usize,
}

/// Result of the vulnerability reachability study (§5).
#[derive(Debug, Clone, Default)]
pub struct VulnReport {
    /// Total annotated vulnerabilities.
    pub total: usize,
    /// Vulnerable functions reachable in the baseline call graph.
    pub reachable_baseline: usize,
    /// Vulnerable functions reachable in the extended call graph.
    pub reachable_extended: usize,
}

/// Everything the experiments need about one benchmark run.
#[derive(Debug)]
pub struct BenchmarkReport {
    /// Project name.
    pub name: String,
    /// Baseline call-graph metrics.
    pub baseline: CgMetrics,
    /// Extended call-graph metrics.
    pub extended: CgMetrics,
    /// Time to parse the project (seconds). The parse happens **once** and
    /// is shared by every phase, so unlike the paper's per-tool timings the
    /// phase columns below are parse-free.
    pub parse_seconds: f64,
    /// Baseline static-analysis time (seconds) — Table 3 column 1.
    pub baseline_seconds: f64,
    /// Approximate-interpretation time (seconds) — Table 3 column 2.
    pub approx_seconds: f64,
    /// Extended static-analysis time (seconds) — Table 3 column 3.
    pub extended_seconds: f64,
    /// Baseline constraint solving alone (excludes parsing), as measured
    /// by [`Analysis::analysis_seconds`].
    pub baseline_analysis_seconds: f64,
    /// Extended constraint solving alone (excludes parsing).
    pub extended_analysis_seconds: f64,
    /// Dynamic call-graph run time (seconds); zero when not requested.
    pub dynamic_seconds: f64,
    /// Whole-pipeline wall-clock time (seconds).
    pub total_seconds: f64,
    /// Number of hints produced.
    pub hint_count: usize,
    /// Pre-analysis statistics (function coverage etc.).
    pub approx_stats: ApproxStats,
    /// Recall/precision, when a dynamic call graph was produced.
    pub accuracy: Option<AccuracyPair>,
    /// Vulnerability reachability, when the project has annotations.
    pub vulns: Option<VulnReport>,
    /// The extended analysis' call graph (for further inspection).
    pub extended_call_graph: CallGraph,
    /// The baseline analysis' call graph.
    pub baseline_call_graph: CallGraph,
    /// The hints (for reuse across projects, §6).
    pub hints: Hints,
    /// Observability report for this run — span tree, counters and
    /// histograms — when collection was active (`AJI_OBS=1`, an enclosing
    /// [`aji_obs::scoped`] registry, or [`aji_obs::force_enable`]).
    pub obs: Option<ObsReport>,
}

impl BenchmarkReport {
    /// Serializes the report — metrics, timings, accuracy, vulnerability
    /// counts and the full hint set — as a JSON value, so experiment runs
    /// can be persisted and re-read (`Hints::from_json_str` reloads the
    /// `"hints"` field).
    pub fn to_json(&self) -> Json {
        let mut pairs = vec![
            ("name", Json::Str(self.name.clone())),
            ("baseline", self.baseline.to_json()),
            ("extended", self.extended.to_json()),
            ("parse_seconds", Json::Num(self.parse_seconds)),
            ("baseline_seconds", Json::Num(self.baseline_seconds)),
            ("approx_seconds", Json::Num(self.approx_seconds)),
            ("extended_seconds", Json::Num(self.extended_seconds)),
            (
                "baseline_analysis_seconds",
                Json::Num(self.baseline_analysis_seconds),
            ),
            (
                "extended_analysis_seconds",
                Json::Num(self.extended_analysis_seconds),
            ),
            ("dynamic_seconds", Json::Num(self.dynamic_seconds)),
            ("total_seconds", Json::Num(self.total_seconds)),
            ("hint_count", self.hint_count.to_json()),
            ("approx_coverage", Json::Num(self.approx_stats.coverage())),
        ];
        if let Some(acc) = &self.accuracy {
            pairs.push((
                "accuracy",
                Json::obj(vec![
                    ("baseline", acc.baseline.to_json()),
                    ("extended", acc.extended.to_json()),
                    ("dynamic_edges", acc.dynamic_edges.to_json()),
                ]),
            ));
        }
        if let Some(v) = &self.vulns {
            pairs.push((
                "vulns",
                Json::obj(vec![
                    ("total", v.total.to_json()),
                    ("reachable_baseline", v.reachable_baseline.to_json()),
                    ("reachable_extended", v.reachable_extended.to_json()),
                ]),
            ));
        }
        pairs.push(("hints", self.hints.to_json()));
        if let Some(obs) = &self.obs {
            pairs.push(("obs", obs.to_json()));
        }
        Json::obj(pairs)
    }

    /// The *deterministic* subset of [`BenchmarkReport::to_json`]: every
    /// analysis result — call-graph metrics, hint counts and the full hint
    /// set, accuracy, vulnerability reachability — but **no wall-clock
    /// timings and no observability data**.
    ///
    /// Two runs of the same project produce byte-identical
    /// `metrics_json().to_string()` output regardless of machine load or
    /// thread count; this is the representation corpus drivers and the
    /// determinism tests compare. (The interpreter and solver are fully
    /// deterministic; only timings vary between runs.)
    pub fn metrics_json(&self) -> Json {
        let mut pairs = vec![
            ("name", Json::Str(self.name.clone())),
            ("baseline", self.baseline.to_json()),
            ("extended", self.extended.to_json()),
            ("hint_count", self.hint_count.to_json()),
            ("approx_coverage", Json::Num(self.approx_stats.coverage())),
        ];
        if let Some(acc) = &self.accuracy {
            pairs.push((
                "accuracy",
                Json::obj(vec![
                    ("baseline", acc.baseline.to_json()),
                    ("extended", acc.extended.to_json()),
                    ("dynamic_edges", acc.dynamic_edges.to_json()),
                ]),
            ));
        }
        if let Some(v) = &self.vulns {
            pairs.push((
                "vulns",
                Json::obj(vec![
                    ("total", v.total.to_json()),
                    ("reachable_baseline", v.reachable_baseline.to_json()),
                    ("reachable_extended", v.reachable_extended.to_json()),
                ]),
            ));
        }
        pairs.push(("hints", self.hints.to_json()));
        Json::obj(pairs)
    }
}

/// Runs the full experiment pipeline on one project.
///
/// # Errors
///
/// Returns [`PipelineError::Parse`] if the project does not parse.
/// Runtime failures inside the dynamic runs degrade gracefully (partial
/// dynamic call graphs are still used, as the paper's test-suite-based
/// dynamic call graphs are also partial).
pub fn run_benchmark(
    project: &Project,
    opts: &PipelineOptions,
) -> Result<BenchmarkReport, PipelineError> {
    with_run_obs(|| {
        let total = aji_obs::span("pipeline");
        // Parse, once for every phase of the pipeline.
        let parse_start = std::time::Instant::now();
        let parsed = aji_parser::parse_project(project)?;
        let parse_seconds = parse_start.elapsed().as_secs_f64();
        run_pipeline(project, &parsed, None, parse_seconds, total, opts)
    })
}

/// [`run_benchmark`] over an already-parsed project — the cache-aware
/// entry point the `aji serve` daemon uses when its content-hash-keyed
/// parse cache already holds the project's modules.
///
/// `report.parse_seconds` is `0.0` (no parsing happened here);
/// [`BenchmarkReport::metrics_json`] — the deterministic payload caches
/// compare — is byte-identical to a [`run_benchmark`] of the same
/// sources.
///
/// # Errors
///
/// As [`run_benchmark`], minus the parse errors (the project already
/// parsed).
pub fn run_benchmark_parsed(
    project: &Project,
    parsed: &ParsedProject,
    opts: &PipelineOptions,
) -> Result<BenchmarkReport, PipelineError> {
    with_run_obs(|| {
        let total = aji_obs::span("pipeline");
        run_pipeline(project, parsed, None, 0.0, total, opts)
    })
}

/// [`run_benchmark_parsed`] with the approximate-interpretation phase
/// replaced by a previously computed hint set — the second cache-aware
/// entry point: when the `aji serve` hint store holds hints for this
/// exact `(source digest, approx-options fingerprint)` key, the most
/// expensive pipeline phase (§5 puts approximate interpretation at ~54%
/// of wall-clock) is skipped outright.
///
/// **Soundness contract:** `hints`/`approx_stats` must come from an
/// [`aji_approx::approximate_interpret`] run over byte-identical sources
/// under fingerprint-identical options — then the report (and its
/// [`BenchmarkReport::metrics_json`]) is byte-identical to the uncached
/// pipeline, which `tests/daemon_determinism.rs` pins. Callers enforce
/// that by keying on [`PipelineOptions::fingerprint`] and the content
/// digest; handing over stale hints produces exactly the stale-hint
/// unsoundness the store's invalidation exists to prevent.
///
/// # Errors
///
/// As [`run_benchmark_parsed`].
pub fn run_benchmark_with_hints(
    project: &Project,
    parsed: &ParsedProject,
    hints: Hints,
    approx_stats: ApproxStats,
    opts: &PipelineOptions,
) -> Result<BenchmarkReport, PipelineError> {
    with_run_obs(|| {
        let total = aji_obs::span("pipeline");
        run_pipeline(
            project,
            parsed,
            Some((hints, approx_stats)),
            0.0,
            total,
            opts,
        )
    })
}

/// When collection is active (AJI_OBS, an enclosing scope, or
/// force_enable), gives the run its own registry so `report.obs` covers
/// exactly this run, then folds it back into the enclosing registry.
fn with_run_obs<F>(f: F) -> Result<BenchmarkReport, PipelineError>
where
    F: FnOnce() -> Result<BenchmarkReport, PipelineError>,
{
    match aji_obs::current_registry() {
        Some(parent) => {
            let reg = Arc::new(aji_obs::Registry::new_like(&parent));
            let mut report = aji_obs::scoped(&reg, f)?;
            let obs = reg.report();
            parent.absorb(&obs);
            report.obs = Some(obs);
            Ok(report)
        }
        None => f(),
    }
}

/// The pipeline proper. Phase timings come from the same [`aji_obs::span`]
/// guards that feed the span tree — [`aji_obs::SpanGuard::finish`] returns
/// the elapsed time whether or not collection is active.
///
/// The project is parsed exactly **once** (by the caller); the baseline
/// analysis, the approximate interpretation, the extended analysis, the
/// dynamic run and the vulnerability study all share the same
/// [`ParsedProject`] (modules are reference-counted, see
/// [`aji_parser::ParsedProject`]). `cached_hints` short-circuits the
/// approximate-interpretation phase; see [`run_benchmark_with_hints`].
fn run_pipeline(
    project: &Project,
    parsed: &ParsedProject,
    cached_hints: Option<(Hints, ApproxStats)>,
    parse_seconds: f64,
    total: aji_obs::SpanGuard,
    opts: &PipelineOptions,
) -> Result<BenchmarkReport, PipelineError> {
    // 1. Baseline.
    let phase = aji_obs::span("baseline-pta");
    let baseline_analysis = analyze_parsed(project, parsed, None, &AnalysisOptions::baseline());
    let baseline_seconds = phase.finish().as_secs_f64();

    // 2. Approximate interpretation — skipped when the caller supplies a
    // content-hash-validated hint set (the `aji serve` warm path).
    let (hints, approx_stats, approx_seconds) = match cached_hints {
        Some((hints, stats)) => {
            aji_obs::counter_add("pipeline.hint_cache_uses", 1);
            (hints, stats, 0.0)
        }
        None => {
            let phase = aji_obs::span("approx-interp");
            let approx: ApproxResult =
                approximate_interpret_parsed(project, parsed, &opts.approx);
            let approx_seconds = phase.finish().as_secs_f64();
            (approx.hints, approx.stats, approx_seconds)
        }
    };

    // 3. Extended analysis.
    let phase = aji_obs::span("extended-pta");
    let extended_analysis = analyze_parsed(project, parsed, Some(&hints), &opts.analysis);
    let extended_seconds = phase.finish().as_secs_f64();

    // 4. Dynamic call graph (optional).
    let mut dynamic_seconds = 0.0;
    let accuracy = if opts.dynamic_cg {
        let phase = aji_obs::span("dynamic-cg");
        let acc = dynamic_call_graph_parsed(project, parsed, &opts.dynamic_interp).map(
            |dyn_edges| AccuracyPair {
                baseline: Accuracy::compare(&baseline_analysis.call_graph, &dyn_edges),
                extended: Accuracy::compare(&extended_analysis.call_graph, &dyn_edges),
                dynamic_edges: dyn_edges.len(),
            },
        );
        dynamic_seconds = phase.finish().as_secs_f64();
        acc
    } else {
        None
    };

    // 5. Vulnerability reachability (optional).
    let vulns = if project.vulns.is_empty() {
        None
    } else {
        let _s = aji_obs::span("vuln-study");
        Some(vuln_reachability(
            project,
            parsed,
            &baseline_analysis,
            &extended_analysis,
        ))
    };

    Ok(BenchmarkReport {
        name: project.name.clone(),
        baseline: CgMetrics::of(&baseline_analysis.call_graph),
        extended: CgMetrics::of(&extended_analysis.call_graph),
        parse_seconds,
        baseline_seconds,
        approx_seconds,
        extended_seconds,
        baseline_analysis_seconds: baseline_analysis.analysis_seconds,
        extended_analysis_seconds: extended_analysis.analysis_seconds,
        dynamic_seconds,
        total_seconds: total.finish().as_secs_f64(),
        hint_count: hints.len(),
        approx_stats,
        accuracy,
        vulns,
        extended_call_graph: extended_analysis.call_graph,
        baseline_call_graph: baseline_analysis.call_graph,
        hints,
        obs: None,
    })
}

/// Produces the dynamic call graph of a project by concretely executing
/// its test driver (or, failing that, its main module). Returns `None`
/// only when the interpreter cannot even be constructed (i.e. the project
/// does not parse).
pub fn dynamic_call_graph(
    project: &Project,
    interp_opts: &InterpOptions,
) -> Option<BTreeSet<(Loc, Loc)>> {
    let parsed = aji_parser::parse_project(project).ok()?;
    dynamic_call_graph_parsed(project, &parsed, interp_opts)
}

/// [`dynamic_call_graph`] over an already-parsed project.
pub fn dynamic_call_graph_parsed(
    project: &Project,
    parsed: &ParsedProject,
    interp_opts: &InterpOptions,
) -> Option<BTreeSet<(Loc, Loc)>> {
    let recorder = Rc::new(RefCell::new(DynCallGraph::new()));
    let mut interp =
        Interp::with_parsed(project, parsed, interp_opts.clone(), Box::new(recorder.clone()));
    let driver = project
        .test_driver
        .clone()
        .unwrap_or_else(|| project.main.clone());
    // A crashing driver still leaves a partial call graph — keep it, like
    // the paper keeps partially-covering test suites.
    let _ = interp.run_module(&driver);
    let edges = recorder
        .borrow()
        .edges
        .iter()
        .map(|e| (e.call_site, e.callee))
        .collect();
    Some(edges)
}

/// Computes §5's vulnerability reachability: how many annotated functions
/// are reachable in each call graph.
fn vuln_reachability(
    project: &Project,
    parsed: &ParsedProject,
    baseline: &Analysis,
    extended: &Analysis,
) -> VulnReport {
    let locs = vuln_function_locs_parsed(project, parsed);
    let mut report = VulnReport {
        total: project.vulns.len(),
        ..VulnReport::default()
    };
    for loc in locs.iter().flatten() {
        if baseline.call_graph.reachable_functions.contains(loc) {
            report.reachable_baseline += 1;
        }
        if extended.call_graph.reachable_functions.contains(loc) {
            report.reachable_extended += 1;
        }
    }
    report
}

/// Resolves each vulnerability annotation to the location of the named
/// function in the named file (`None` when not found).
///
/// # Errors
///
/// Returns [`PipelineError::Parse`] if the project does not parse; use
/// [`vuln_function_locs_parsed`] to reuse an existing parse.
pub fn vuln_function_locs(project: &Project) -> Result<Vec<Option<Loc>>, PipelineError> {
    let parsed = aji_parser::parse_project(project)?;
    Ok(vuln_function_locs_parsed(project, &parsed))
}

/// [`vuln_function_locs`] over an already-parsed project.
pub fn vuln_function_locs_parsed(project: &Project, parsed: &ParsedProject) -> Vec<Option<Loc>> {
    use aji_ast::visit::{FunctionCollector, Visit};
    let mut out = Vec::with_capacity(project.vulns.len());
    for v in &project.vulns {
        let Some(file_idx) = project.files.iter().position(|f| f.path == v.path) else {
            out.push(None);
            continue;
        };
        let mut c = FunctionCollector::default();
        c.visit_module(&parsed.modules[file_idx]);
        let loc = c
            .functions
            .iter()
            .find(|(_, _, name)| name.as_deref() == Some(v.function.as_str()))
            .map(|(_, span, _)| parsed.source_map.loc(*span));
        out.push(loc);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipeline_on_method_table() {
        let mut p = Project::new("demo");
        p.add_file(
            "index.js",
            "var api = {};\n\
             ['a', 'b'].forEach(function(m) { api[m] = function() {}; });\n\
             api.a();\n\
             api.b();",
        );
        let r = run_benchmark(&p, &PipelineOptions::default()).unwrap();
        assert!(r.extended.call_edges > r.baseline.call_edges);
        assert!(r.hint_count >= 2);
        assert!(r.approx_seconds >= 0.0);
    }

    #[test]
    fn pipeline_with_dynamic_cg() {
        let mut p = Project::new("demo");
        p.add_file(
            "index.js",
            "var t = { run: function() { helper(); } };\n\
             function helper() {}\n\
             var k = 'run';\n\
             t[k]();",
        );
        p.test_driver = Some("index.js".to_string());
        let r = run_benchmark(&p, &PipelineOptions::with_dynamic_cg()).unwrap();
        let acc = r.accuracy.expect("dynamic cg");
        assert!(acc.dynamic_edges >= 2);
        assert!(acc.extended.recall_pct() >= acc.baseline.recall_pct());
    }

    #[test]
    fn pipeline_with_vulns() {
        let mut p = Project::new("demo");
        p.add_file("index.js", "var d = require('dep');\nd.used();");
        p.add_file(
            "node_modules/dep/index.js",
            "exports.used = function used() {};\n\
             exports.unused = function unusedVuln() {};",
        );
        p.add_vuln("CVE-SYN-1", "node_modules/dep/index.js", "used");
        p.add_vuln("CVE-SYN-2", "node_modules/dep/index.js", "unusedVuln");
        let r = run_benchmark(&p, &PipelineOptions::default()).unwrap();
        let v = r.vulns.expect("vuln report");
        assert_eq!(v.total, 2);
        assert_eq!(v.reachable_baseline, 1);
        assert_eq!(v.reachable_extended, 1);
    }

    #[test]
    fn cached_entry_points_match_cold_run() {
        let mut p = Project::new("demo");
        p.add_file(
            "index.js",
            "var api = {};\n\
             ['a', 'b'].forEach(function(m) { api[m] = function() {}; });\n\
             api.a();\n\
             api.b();",
        );
        p.test_driver = Some("index.js".to_string());
        let opts = PipelineOptions::with_dynamic_cg();
        let cold = run_benchmark(&p, &opts).unwrap();
        let golden = cold.metrics_json().to_string();

        let parsed = aji_parser::parse_project(&p).unwrap();
        let warm = run_benchmark_parsed(&p, &parsed, &opts).unwrap();
        assert_eq!(warm.metrics_json().to_string(), golden);
        assert_eq!(warm.parse_seconds, 0.0);

        let hinted = run_benchmark_with_hints(
            &p,
            &parsed,
            cold.hints.clone(),
            cold.approx_stats.clone(),
            &opts,
        )
        .unwrap();
        assert_eq!(hinted.metrics_json().to_string(), golden);
        assert_eq!(hinted.approx_seconds, 0.0);
    }

    #[test]
    fn fingerprints_separate_option_sets() {
        let base = PipelineOptions::default().fingerprint();
        assert_eq!(base, PipelineOptions::default().fingerprint());
        assert_ne!(base, PipelineOptions::with_dynamic_cg().fingerprint());
        let mut tight = PipelineOptions::default();
        tight.approx.interp.max_steps = 1;
        assert_ne!(base, tight.fingerprint());
        // The VM toggle is observationally neutral and shares cache keys.
        let mut no_vm = PipelineOptions::default();
        no_vm.approx.interp.use_vm = false;
        assert_eq!(base, no_vm.fingerprint());
    }

    #[test]
    fn report_serializes_and_hints_reload() {
        let mut p = Project::new("demo");
        p.add_file(
            "index.js",
            "var api = {};\n\
             ['a', 'b'].forEach(function(m) { api[m] = function() {}; });\n\
             api.a();",
        );
        p.test_driver = Some("index.js".to_string());
        let r = run_benchmark(&p, &PipelineOptions::with_dynamic_cg()).unwrap();
        let text = r.to_json().to_string();
        let doc = Json::parse(&text).expect("report JSON parses");
        assert_eq!(doc.get("name").and_then(Json::as_str), Some("demo"));
        assert!(doc.get("accuracy").is_some());
        // The persisted hints reload to an equal hint set.
        let hints_json = doc.get("hints").expect("hints field");
        let reloaded = Hints::from_json_str(&hints_json.to_string()).unwrap();
        assert_eq!(reloaded, r.hints);
        assert_eq!(reloaded.len(), r.hint_count);
    }
}
