//! Statistical property-access bug finder.
//!
//! The concrete interpreter, run with
//! [`aji_interp::InterpOptions::observe_props`], reports every static
//! member read on a plain object: the receiver's own-key **shape**, the
//! property name, and whether the lookup found anything. This module
//! mines those observations into a corpus-wide frequency model and flags
//! the accesses the model finds *surprising* — a read that missed on a
//! shape whose key set contains a near-identical name is, with high
//! confidence, a **typo**, the canonical silent-`undefined` JavaScript
//! defect no crash ever reports.
//!
//! Scoring is deliberately free of transcendental math so reports are
//! byte-identical across platforms: surprisal is expressed through the
//! *support* of the shape (how many successful reads the model holds for
//! it — the more evidence the shape's API is what we think it is, the
//! more surprising a miss) and a confidence in `{1.0, 0.6}` from the
//! bounded edit distance to the nearest shape key (1 or 2), halved when
//! the same name *was* successfully read elsewhere in the corpus (then
//! it is a real API name and the miss is more likely feature detection
//! than a typo). The default threshold `0.9` keeps exactly the
//! distance-1, never-seen-working names — the typo signature.
//!
//! Ground truth comes from the corpus generator's typo-injection mode
//! ([`aji_corpus::generate_with_manifest`]): [`evaluate`] matches the
//! flagged set against the injected-defect manifests and reports
//! precision and recall.

use aji_ast::{Loc, Project};
use aji_bench::run_corpus_map;
use aji_corpus::InjectedTypo;
use aji_interp::{Interp, InterpOptions, Tracer};
use aji_support::{Fnv64, Json};
use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet};
use std::rc::Rc;

/// Options for the finder.
#[derive(Debug, Clone)]
pub struct FinderOptions {
    /// Minimum confidence a candidate needs to be flagged.
    pub threshold: f64,
    /// Interpreter budgets for the observation run
    /// ([`InterpOptions::observe_props`] is forced on).
    pub interp: InterpOptions,
}

impl Default for FinderOptions {
    fn default() -> Self {
        FinderOptions {
            threshold: 0.9,
            interp: InterpOptions::default(),
        }
    }
}

/// Fingerprint of a shape: FNV over the sorted, deduplicated own keys.
fn shape_fingerprint(keys: &[String]) -> u64 {
    let mut h = Fnv64::new(0x5AAF_E000);
    for k in keys {
        h.write_str(k);
    }
    h.finish()
}

/// Tracer that aggregates property-access observations.
#[derive(Default)]
struct PropObserver {
    /// Successful reads: `(shape, prop) -> count`.
    present: BTreeMap<(u64, String), u64>,
    /// Failed reads: `(shape, prop, site) -> count`.
    absent: BTreeMap<(u64, String, Option<Loc>), u64>,
    /// Shape fingerprint -> sorted own keys.
    shapes: BTreeMap<u64, Vec<String>>,
}

impl Tracer for PropObserver {
    fn on_prop_access(
        &mut self,
        site: Option<Loc>,
        prop: &str,
        shape: &[std::rc::Rc<str>],
        found: bool,
    ) {
        let mut keys: Vec<String> = shape.iter().map(|k| k.to_string()).collect();
        keys.sort();
        keys.dedup();
        let fp = shape_fingerprint(&keys);
        self.shapes.entry(fp).or_insert(keys);
        if found {
            *self.present.entry((fp, prop.to_string())).or_insert(0) += 1;
        } else {
            *self
                .absent
                .entry((fp, prop.to_string(), site))
                .or_insert(0) += 1;
        }
    }
}

/// One project's aggregated observations, with sites rendered to
/// `path:line:col` strings (so the struct is `Send` and the report needs
/// no source map).
#[derive(Debug)]
pub struct ProjectObservations {
    /// `Project::name`.
    pub name: String,
    /// Successful reads: `(shape, prop) -> count`.
    pub present: BTreeMap<(u64, String), u64>,
    /// Failed reads: `(shape, prop, site_display) -> count`.
    pub absent: BTreeMap<(u64, String, String), u64>,
    /// Shape fingerprint -> sorted own keys.
    pub shapes: BTreeMap<u64, Vec<String>>,
}

/// Concretely executes `project`'s test driver with property observation
/// on and aggregates what the tracer saw. Returns `None` only when the
/// project does not parse (a crashing driver leaves partial
/// observations, like a partially covering test suite).
#[must_use]
pub fn observe_project(project: &Project, interp: &InterpOptions) -> Option<ProjectObservations> {
    let _span = aji_obs::span("quant.observe");
    let parsed = aji_parser::parse_project(project).ok()?;
    let opts = InterpOptions {
        observe_props: true,
        ..interp.clone()
    };
    let observer = Rc::new(RefCell::new(PropObserver::default()));
    let mut interp = Interp::with_parsed(project, &parsed, opts, Box::new(observer.clone()));
    let driver = project
        .test_driver
        .clone()
        .unwrap_or_else(|| project.main.clone());
    let _ = interp.run_module(&driver);
    let obs = observer.borrow();
    let absent = obs
        .absent
        .iter()
        .map(|((fp, prop, site), n)| {
            let display = site
                .map(|l| parsed.source_map.display_loc(l))
                .unwrap_or_else(|| "<eval>".to_string());
            ((*fp, prop.clone(), display), *n)
        })
        .collect();
    aji_obs::counter_add(
        "quant.finder.observations",
        obs.present.values().sum::<u64>() + obs.absent.values().sum::<u64>(),
    );
    Some(ProjectObservations {
        name: project.name.clone(),
        present: obs.present.clone(),
        absent,
        shapes: obs.shapes.clone(),
    })
}

/// Bounded Levenshtein distance: the exact distance if it is ≤ `bound`,
/// `bound + 1` otherwise.
fn edit_distance_bounded(a: &str, b: &str, bound: usize) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.len().abs_diff(b.len()) > bound {
        return bound + 1;
    }
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        let mut row_min = cur[0];
        for (j, cb) in b.iter().enumerate() {
            let cost = usize::from(ca != cb);
            cur[j + 1] = (prev[j] + cost).min(prev[j + 1] + 1).min(cur[j] + 1);
            row_min = row_min.min(cur[j + 1]);
        }
        if row_min > bound {
            return bound + 1;
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()].min(bound + 1)
}

/// One flagging candidate: a property read that missed.
#[derive(Debug, Clone)]
pub struct Candidate {
    /// `Project::name` the access was observed in.
    pub project: String,
    /// `path:line:col` of the access (`<eval>` for generated code).
    pub site: String,
    /// The property name that was read.
    pub prop: String,
    /// Nearest own key of the receiver's shape within edit distance 2.
    pub nearest: Option<String>,
    /// Confidence the miss is a defect, in `[0, 1]`.
    pub confidence: f64,
    /// Successful reads the model holds for the receiver's shape — the
    /// surprisal support (more evidence, more surprising a miss).
    pub support: u64,
    /// How many times this exact miss was observed.
    pub count: u64,
}

impl Candidate {
    /// Serializes the candidate for the deterministic report.
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("project", Json::Str(self.project.clone())),
            ("site", Json::Str(self.site.clone())),
            ("prop", Json::Str(self.prop.clone())),
            (
                "nearest",
                self.nearest
                    .as_ref()
                    .map_or(Json::Str(String::new()), |n| Json::Str(n.clone())),
            ),
            ("confidence", Json::Num(self.confidence)),
            ("support", Json::Num(self.support as f64)),
            ("count", Json::Num(self.count as f64)),
        ])
    }
}

/// The corpus-wide frequency model plus the scored candidates.
#[derive(Debug)]
pub struct FinderReport {
    /// Every scored miss, ranked by confidence (desc), then support
    /// (desc), then `(project, site, prop)`.
    pub candidates: Vec<Candidate>,
    /// The configured threshold.
    pub threshold: f64,
    /// Projects that failed to parse: names in corpus order.
    pub errors: Vec<String>,
}

impl FinderReport {
    /// The candidates at or above the threshold — the findings.
    #[must_use]
    pub fn flagged(&self) -> Vec<&Candidate> {
        self.candidates
            .iter()
            .filter(|c| c.confidence >= self.threshold)
            .collect()
    }

    /// Serializes the report (threshold, flagged and total counts, the
    /// full ranked candidate list).
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("threshold", Json::Num(self.threshold)),
            ("candidates", Json::Num(self.candidates.len() as f64)),
            ("flagged", Json::Num(self.flagged().len() as f64)),
            (
                "findings",
                Json::Arr(self.flagged().iter().map(|c| c.to_json()).collect()),
            ),
            (
                "errors",
                Json::Arr(self.errors.iter().cloned().map(Json::Str).collect()),
            ),
        ])
    }
}

/// Runs [`observe_project`] over a corpus on up to `threads` workers
/// (order-preserving, so the merged model — and hence the report — is
/// byte-identical to a serial run), then scores every missed access
/// against the merged frequency model.
#[must_use]
pub fn find_anomalies(projects: Vec<Project>, opts: &FinderOptions, threads: usize) -> FinderReport {
    let results = run_corpus_map(projects, threads, |p| {
        observe_project(p, &opts.interp).ok_or("project does not parse")
    });
    let mut observations = Vec::new();
    let mut errors = Vec::new();
    for r in results {
        match r.outcome {
            Ok(o) => observations.push(o),
            Err(_) => errors.push(r.name),
        }
    }

    // Corpus-wide model: shape keys and per-shape support merge across
    // projects (generated libraries share shapes, so evidence
    // accumulates); the worked-elsewhere dampening stays *per project* —
    // a name behaving in one codebase says nothing about a typo in
    // another.
    let mut shapes: BTreeMap<u64, Vec<String>> = BTreeMap::new();
    let mut support: BTreeMap<u64, u64> = BTreeMap::new();
    for o in &observations {
        for (fp, keys) in &o.shapes {
            shapes.entry(*fp).or_insert_with(|| keys.clone());
        }
        for ((fp, _), n) in &o.present {
            *support.entry(*fp).or_insert(0) += n;
        }
    }

    let mut candidates = Vec::new();
    for o in &observations {
        let known_good: BTreeSet<&str> =
            o.present.keys().map(|(_, prop)| prop.as_str()).collect();
        for ((fp, prop, site), count) in &o.absent {
            let keys = shapes.get(fp).map(Vec::as_slice).unwrap_or(&[]);
            let mut nearest: Option<(&String, usize)> = None;
            for k in keys {
                let d = edit_distance_bounded(prop, k, 2);
                if d > 0 && d <= 2 && nearest.is_none_or(|(_, best)| d < best) {
                    nearest = Some((k, d));
                }
            }
            let mut confidence = match nearest {
                Some((_, 1)) => 1.0,
                Some((_, 2)) => 0.6,
                _ => 0.0,
            };
            if known_good.contains(prop.as_str()) {
                confidence *= 0.5;
            }
            candidates.push(Candidate {
                project: o.name.clone(),
                site: site.clone(),
                prop: prop.clone(),
                nearest: nearest.map(|(k, _)| k.clone()),
                confidence,
                support: support.get(fp).copied().unwrap_or(0),
                count: *count,
            });
        }
    }
    candidates.sort_by(|a, b| {
        b.confidence
            .partial_cmp(&a.confidence)
            .expect("confidence is never NaN")
            .then(b.support.cmp(&a.support))
            .then(a.project.cmp(&b.project))
            .then(a.site.cmp(&b.site))
            .then(a.prop.cmp(&b.prop))
    });
    aji_obs::counter_add("quant.finder.candidates", candidates.len() as u64);
    aji_obs::counter_add(
        "quant.finder.flagged",
        candidates
            .iter()
            .filter(|c| c.confidence >= opts.threshold)
            .count() as u64,
    );
    FinderReport {
        candidates,
        threshold: opts.threshold,
        errors,
    }
}

/// Precision/recall of the flagged set against the generator's
/// injected-defect manifests.
#[derive(Debug)]
pub struct EvalReport {
    /// Total injected typos across the manifests.
    pub injected: usize,
    /// Flagged candidates, total.
    pub flagged: usize,
    /// Injected typos matched by at least one flagged candidate.
    pub recovered: usize,
    /// Flagged candidates matching some injected typo of their project.
    pub true_positives: usize,
    /// `recovered / injected`, as a percentage (100 when nothing was
    /// injected).
    pub recall_pct: f64,
    /// `true_positives / flagged`, as a percentage (100 when nothing was
    /// flagged).
    pub precision_pct: f64,
}

impl EvalReport {
    /// Serializes the evaluation for the deterministic report.
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("injected", Json::Num(self.injected as f64)),
            ("flagged", Json::Num(self.flagged as f64)),
            ("recovered", Json::Num(self.recovered as f64)),
            ("true_positives", Json::Num(self.true_positives as f64)),
            ("recall_pct", Json::Num(self.recall_pct)),
            ("precision_pct", Json::Num(self.precision_pct)),
        ])
    }
}

/// Matches the report's flagged candidates against the injected-defect
/// manifests: a candidate hits when its project and property name equal
/// an injected typo's.
#[must_use]
pub fn evaluate(report: &FinderReport, manifests: &[(String, Vec<InjectedTypo>)]) -> EvalReport {
    let flagged = report.flagged();
    let injected: usize = manifests.iter().map(|(_, ts)| ts.len()).sum();
    let mut recovered = 0usize;
    for (project, typos) in manifests {
        for t in typos {
            if flagged
                .iter()
                .any(|c| &c.project == project && c.prop == t.prop)
            {
                recovered += 1;
            }
        }
    }
    let true_positives = flagged
        .iter()
        .filter(|c| {
            manifests.iter().any(|(project, typos)| {
                &c.project == project && typos.iter().any(|t| t.prop == c.prop)
            })
        })
        .count();
    let pct = |num: usize, den: usize| {
        if den == 0 {
            100.0
        } else {
            num as f64 / den as f64 * 100.0
        }
    };
    EvalReport {
        injected,
        flagged: flagged.len(),
        recovered,
        true_positives,
        recall_pct: pct(recovered, injected),
        precision_pct: pct(true_positives, flagged.len()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edit_distance_basics() {
        assert_eq!(edit_distance_bounded("op3", "op3", 2), 0);
        assert_eq!(edit_distance_bounded("op3x", "op3", 2), 1);
        assert_eq!(edit_distance_bounded("op", "op3", 2), 1);
        assert_eq!(edit_distance_bounded("opp3", "op3", 2), 1);
        assert_eq!(edit_distance_bounded("oq4", "op3", 2), 2);
        assert_eq!(edit_distance_bounded("zzzz", "op3", 2), 3); // capped
        assert_eq!(edit_distance_bounded("abcdefgh", "op3", 2), 3); // length gap
    }

    #[test]
    fn shape_fingerprint_is_order_independent_via_sorting() {
        let mut a = vec!["x".to_string(), "y".to_string()];
        let mut b = vec!["y".to_string(), "x".to_string()];
        a.sort();
        b.sort();
        assert_eq!(shape_fingerprint(&a), shape_fingerprint(&b));
        assert_ne!(shape_fingerprint(&a), shape_fingerprint(&a[..1].to_vec()));
    }

    #[test]
    fn injected_typo_is_flagged_with_full_confidence() {
        let mut cfg = aji_corpus::GenConfig::small("finder-unit", 33);
        cfg.typo_injections = 2;
        let (project, typos) = aji_corpus::generate_with_manifest(&cfg);
        assert_eq!(typos.len(), 2);
        let report = find_anomalies(vec![project], &FinderOptions::default(), 1);
        let manifests = vec![("finder-unit".to_string(), typos)];
        let eval = evaluate(&report, &manifests);
        assert_eq!(eval.recovered, eval.injected, "{report:#?}");
        assert!(eval.recall_pct >= 90.0);
    }
}
