//! Counterfactual root-cause quantification.
//!
//! [`aji_oracle::triage`](aji_oracle::triage()) names *why* each dynamic call
//! edge is missing from the hint-extended static graph; this module asks
//! the follow-up question the paper's §7 discussion leaves open: **how
//! much recall would fixing each cause actually buy?** For every
//! [`Cause`] family with at least one missed edge, [`rank_project`]
//! computes a counterfactual:
//!
//! * [`Cause::HigherOrderProxy`] — the one cause with a real lever in
//!   the solver: re-solve the static call graph with the §6 proxy-read
//!   hint class force-enabled ([`AnalysisOptions::with_proxy_reads`])
//!   and count which of the family's missed edges the re-solved graph
//!   actually lands (strategy `"resolve"`). This is a *measured* gain,
//!   not an upper bound — the re-solve can and does fall short when the
//!   proxy-read key never flowed into a recorded hint.
//! * every other cause — patch the family's missed edges into the
//!   extended graph wholesale (strategy `"patch-edges"`). This is the
//!   *upper bound* on the family's recall: a perfect fix recovers
//!   exactly the edges the cause explains, no more (static graph edges
//!   are independent, so patching one family cannot land another's).
//!
//! The spurious-side mirror quantifies each [`SpuriousCause`] family by
//! the precision the extended graph would gain if the family's edges
//! were dropped — pure arithmetic on the edge counts, since removing
//! edges cannot create new matches.
//!
//! [`rank_corpus`] fans [`rank_project`] over a corpus with
//! [`aji_bench::run_corpus_map`], aggregates per-cause counts, and ranks
//! causes by recovered edges — so the report reads as a priority list:
//! "fix this family first". All output is deterministic: counts are
//! integers, percentages are single IEEE divisions of those integers,
//! and every collection is ordered, so parallel runs are byte-identical
//! to serial ones.

use aji::{dynamic_call_graph_parsed, PipelineError};
use aji_approx::approximate_interpret_parsed;
use aji_ast::{Loc, Project};
use aji_bench::{run_corpus_map, ProjectResult};
use aji_oracle::{triage, triage_spurious, Cause, EdgeDiff, OracleOptions, SpuriousCause};
use aji_pta::{analyze_parsed, AnalysisOptions};
use aji_support::Json;
use std::collections::BTreeSet;

/// The counterfactual verdict on one missed-edge cause family.
#[derive(Debug, Clone)]
pub struct CauseImpact {
    /// [`Cause::key`] of the family.
    pub cause: &'static str,
    /// Missed edges triage attributed to this cause.
    pub missed: usize,
    /// Edges the counterfactual recovers (≤ `missed`).
    pub recovered: usize,
    /// `"resolve"` (measured re-solve) or `"patch-edges"` (upper bound).
    pub strategy: &'static str,
    /// Recall the fix buys, in percentage points of dynamic edges.
    pub recall_gain_pct: f64,
}

impl CauseImpact {
    /// Serializes the impact for the deterministic report. The `name`
    /// field carries the `quant.cause.` prefix so the perf gate's guarded
    /// `quant.*` counter family covers every ranked row.
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("name", Json::Str(format!("quant.cause.{}", self.cause))),
            ("missed", Json::Num(self.missed as f64)),
            ("recovered", Json::Num(self.recovered as f64)),
            ("strategy", Json::Str(self.strategy.to_string())),
            ("recall_gain_pct", Json::Num(self.recall_gain_pct)),
        ])
    }
}

/// The counterfactual verdict on one spurious-edge cause family.
#[derive(Debug, Clone)]
pub struct SpuriousImpact {
    /// [`SpuriousCause::key`] of the family.
    pub cause: &'static str,
    /// Spurious edges triage attributed to this cause.
    pub spurious: usize,
    /// Precision the extended graph gains if the family's edges are
    /// dropped, in percentage points.
    pub precision_gain_pct: f64,
}

impl SpuriousImpact {
    /// Serializes the impact for the deterministic report.
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            (
                "name",
                Json::Str(format!("quant.spurious.{}", self.cause)),
            ),
            ("spurious", Json::Num(self.spurious as f64)),
            ("precision_gain_pct", Json::Num(self.precision_gain_pct)),
        ])
    }
}

/// One project's ranked counterfactuals.
#[derive(Debug)]
pub struct ProjectRank {
    /// `Project::name`.
    pub name: String,
    /// Dynamically observed call edges (the recall denominator).
    pub dynamic_edges: usize,
    /// Dynamic edges the extended graph matched.
    pub matched: usize,
    /// Dynamic edges the extended graph missed.
    pub missed: usize,
    /// Spurious extended edges at exercised sites.
    pub spurious: usize,
    /// Per-cause counterfactuals, ranked by recovered edges (desc), then
    /// cause key (asc). Families with zero missed edges are included so
    /// reports align across projects.
    pub causes: Vec<CauseImpact>,
    /// Per-spurious-cause counterfactuals, ranked by precision gain.
    pub spurious_causes: Vec<SpuriousImpact>,
}

impl ProjectRank {
    /// Serializes the project's ranking for the deterministic report.
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("name", Json::Str(self.name.clone())),
            ("dynamic_edges", Json::Num(self.dynamic_edges as f64)),
            ("matched", Json::Num(self.matched as f64)),
            ("missed", Json::Num(self.missed as f64)),
            ("spurious", Json::Num(self.spurious as f64)),
            (
                "causes",
                Json::Arr(self.causes.iter().map(CauseImpact::to_json).collect()),
            ),
            (
                "spurious_causes",
                Json::Arr(
                    self.spurious_causes
                        .iter()
                        .map(SpuriousImpact::to_json)
                        .collect(),
                ),
            ),
        ])
    }
}

fn rank_causes(
    missed_by_cause: &[(Cause, BTreeSet<(Loc, Loc)>)],
    resolve_recovered: &BTreeSet<(Loc, Loc)>,
    dynamic_edges: usize,
) -> Vec<CauseImpact> {
    let mut causes: Vec<CauseImpact> = missed_by_cause
        .iter()
        .map(|(c, edges)| {
            let (recovered, strategy) = if *c == Cause::HigherOrderProxy {
                (
                    edges.intersection(resolve_recovered).count(),
                    "resolve",
                )
            } else {
                (edges.len(), "patch-edges")
            };
            CauseImpact {
                cause: c.key(),
                missed: edges.len(),
                recovered,
                strategy,
                recall_gain_pct: if dynamic_edges == 0 {
                    0.0
                } else {
                    recovered as f64 / dynamic_edges as f64 * 100.0
                },
            }
        })
        .collect();
    causes.sort_by(|a, b| b.recovered.cmp(&a.recovered).then(a.cause.cmp(b.cause)));
    causes
}

fn rank_spurious(counts: &[(SpuriousCause, usize)], matched: usize, spurious: usize) -> Vec<SpuriousImpact> {
    let precision = |m: usize, s: usize| -> f64 {
        if m + s == 0 {
            100.0
        } else {
            m as f64 / (m + s) as f64 * 100.0
        }
    };
    let base = precision(matched, spurious);
    let mut out: Vec<SpuriousImpact> = counts
        .iter()
        .map(|&(c, n)| SpuriousImpact {
            cause: c.key(),
            spurious: n,
            precision_gain_pct: precision(matched, spurious - n) - base,
        })
        .collect();
    out.sort_by(|a, b| {
        b.spurious
            .cmp(&a.spurious)
            .then(a.cause.cmp(b.cause))
    });
    out
}

/// Runs the full oracle pipeline on one project, keeping the
/// intermediates, and computes the per-cause counterfactuals.
///
/// # Errors
///
/// As [`aji_oracle::run_oracle`]: parse failure or an unconstructible
/// interpreter. A crashing test driver is not an error.
pub fn rank_project(project: &Project, opts: &OracleOptions) -> Result<ProjectRank, PipelineError> {
    let _span = aji_obs::span("quant.rank");
    let parsed = aji_parser::parse_project(project)?;

    let baseline = analyze_parsed(project, &parsed, None, &AnalysisOptions::baseline());
    let approx = approximate_interpret_parsed(project, &parsed, &opts.approx);
    let extended = analyze_parsed(project, &parsed, Some(&approx.hints), &opts.analysis);
    let dynamic = dynamic_call_graph_parsed(project, &parsed, &opts.dynamic_interp)
        .ok_or_else(|| {
            PipelineError::Dynamic("could not construct the concrete interpreter".to_string())
        })?;
    let diff = EdgeDiff::compute(&baseline.call_graph, &extended.call_graph, &dynamic);
    let missed = triage(
        &parsed,
        &approx.hints,
        &approx,
        &extended.call_graph,
        &diff.missed,
    );
    let spurious = triage_spurious(&parsed, &baseline.call_graph, &diff.spurious);

    // The one measured counterfactual: §6 proxy-read hints force-enabled.
    // Only worth a re-solve when the family is non-empty.
    let proxy_missed = missed
        .iter()
        .any(|m| m.cause == Cause::HigherOrderProxy);
    let resolve_recovered: BTreeSet<(Loc, Loc)> = if proxy_missed {
        let resolved = analyze_parsed(
            project,
            &parsed,
            Some(&approx.hints),
            &AnalysisOptions::with_proxy_reads(),
        );
        diff.missed
            .iter()
            .filter(|e| resolved.call_graph.edges.contains(e))
            .copied()
            .collect()
    } else {
        BTreeSet::new()
    };

    let missed_by_cause: Vec<(Cause, BTreeSet<(Loc, Loc)>)> = Cause::all()
        .iter()
        .map(|c| {
            (
                *c,
                missed
                    .iter()
                    .filter(|m| m.cause == *c)
                    .map(|m| (m.site, m.callee))
                    .collect(),
            )
        })
        .collect();
    let spurious_counts: Vec<(SpuriousCause, usize)> = SpuriousCause::all()
        .iter()
        .map(|c| (*c, spurious.iter().filter(|s| s.cause == *c).count()))
        .collect();

    let causes = rank_causes(&missed_by_cause, &resolve_recovered, diff.dynamic_edges);
    aji_obs::counter_add(
        "quant.rank.recovered",
        causes.iter().map(|c| c.recovered as u64).sum(),
    );
    aji_obs::counter_add("quant.rank.missed", diff.missed.len() as u64);
    Ok(ProjectRank {
        name: project.name.clone(),
        dynamic_edges: diff.dynamic_edges,
        matched: diff.matched.len(),
        missed: diff.missed.len(),
        spurious: diff.spurious.len(),
        causes,
        spurious_causes: rank_spurious(&spurious_counts, diff.matched.len(), diff.spurious.len()),
    })
}

/// Corpus-level aggregate of per-project rankings.
#[derive(Debug)]
pub struct CorpusRank {
    /// Per-project rankings, in corpus order (failures excluded).
    pub projects: Vec<ProjectRank>,
    /// Projects that failed the pipeline: `(name, error)` in corpus order.
    pub errors: Vec<(String, String)>,
}

impl CorpusRank {
    /// The corpus-wide ranking: per-cause counts summed over projects,
    /// ranked by total recovered edges (desc), then cause key. A family's
    /// strategy is `"resolve"` exactly when every project used the
    /// re-solve for it, i.e. it is cause-determined, not data-determined.
    #[must_use]
    pub fn ranked(&self) -> Vec<CauseImpact> {
        let dynamic: usize = self.projects.iter().map(|p| p.dynamic_edges).sum();
        let mut totals: Vec<CauseImpact> = Cause::all()
            .iter()
            .map(|c| {
                let (mut missed, mut recovered) = (0usize, 0usize);
                for p in &self.projects {
                    for ci in &p.causes {
                        if ci.cause == c.key() {
                            missed += ci.missed;
                            recovered += ci.recovered;
                        }
                    }
                }
                CauseImpact {
                    cause: c.key(),
                    missed,
                    recovered,
                    strategy: if *c == Cause::HigherOrderProxy {
                        "resolve"
                    } else {
                        "patch-edges"
                    },
                    recall_gain_pct: if dynamic == 0 {
                        0.0
                    } else {
                        recovered as f64 / dynamic as f64 * 100.0
                    },
                }
            })
            .collect();
        totals.sort_by(|a, b| b.recovered.cmp(&a.recovered).then(a.cause.cmp(b.cause)));
        totals
    }

    /// The corpus-wide spurious ranking, mirroring [`CorpusRank::ranked`].
    #[must_use]
    pub fn ranked_spurious(&self) -> Vec<SpuriousImpact> {
        let matched: usize = self.projects.iter().map(|p| p.matched).sum();
        let spurious: usize = self.projects.iter().map(|p| p.spurious).sum();
        let counts: Vec<(SpuriousCause, usize)> = SpuriousCause::all()
            .iter()
            .map(|c| {
                (
                    *c,
                    self.projects
                        .iter()
                        .flat_map(|p| &p.spurious_causes)
                        .filter(|s| s.cause == c.key())
                        .map(|s| s.spurious)
                        .sum(),
                )
            })
            .collect();
        rank_spurious(&counts, matched, spurious)
    }

    /// The deterministic corpus report: ranked cause table first (the
    /// headline), per-project detail after. No wall-clock fields, so two
    /// runs at any thread count print byte-identical text.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let dynamic: usize = self.projects.iter().map(|p| p.dynamic_edges).sum();
        let missed: usize = self.projects.iter().map(|p| p.missed).sum();
        Json::obj(vec![
            ("projects", Json::Num(self.projects.len() as f64)),
            ("errors", Json::Num(self.errors.len() as f64)),
            ("dynamic_edges", Json::Num(dynamic as f64)),
            ("missed", Json::Num(missed as f64)),
            (
                "ranked",
                Json::Arr(self.ranked().iter().map(CauseImpact::to_json).collect()),
            ),
            (
                "ranked_spurious",
                Json::Arr(
                    self.ranked_spurious()
                        .iter()
                        .map(SpuriousImpact::to_json)
                        .collect(),
                ),
            ),
            (
                "per_project",
                Json::Arr(self.projects.iter().map(ProjectRank::to_json).collect()),
            ),
            (
                "failures",
                Json::Arr(
                    self.errors
                        .iter()
                        .map(|(n, e)| {
                            Json::obj(vec![
                                ("name", Json::Str(n.clone())),
                                ("error", Json::Str(e.clone())),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

/// Fans [`rank_project`] over a corpus on up to `threads` workers
/// (`0` = auto), preserving corpus order — the report is byte-identical
/// to a serial run.
#[must_use]
pub fn rank_corpus(projects: Vec<Project>, opts: &OracleOptions, threads: usize) -> CorpusRank {
    let results: Vec<ProjectResult<ProjectRank, PipelineError>> =
        run_corpus_map(projects, threads, |p| rank_project(p, opts));
    let mut rank = CorpusRank {
        projects: Vec::with_capacity(results.len()),
        errors: Vec::new(),
    };
    for r in results {
        match r.outcome {
            Ok(p) => rank.projects.push(p),
            Err(e) => rank.errors.push((r.name, e.to_string())),
        }
    }
    rank
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovered_never_exceeds_missed() {
        let projects: Vec<_> = aji_corpus::pattern_projects().into_iter().take(6).collect();
        let rank = rank_corpus(projects, &OracleOptions::default(), 1);
        assert!(rank.errors.is_empty(), "{:?}", rank.errors);
        for p in &rank.projects {
            for c in &p.causes {
                assert!(c.recovered <= c.missed, "{}: {:?}", p.name, c);
                if c.strategy == "patch-edges" {
                    assert_eq!(c.recovered, c.missed, "{}: {:?}", p.name, c);
                }
            }
            let missed_sum: usize = p.causes.iter().map(|c| c.missed).sum();
            assert_eq!(missed_sum, p.missed, "{}: causes must partition misses", p.name);
        }
    }

    #[test]
    fn ranking_is_sorted_and_complete() {
        let projects: Vec<_> = aji_corpus::pattern_projects().into_iter().take(6).collect();
        let rank = rank_corpus(projects, &OracleOptions::default(), 1);
        let ranked = rank.ranked();
        assert_eq!(ranked.len(), Cause::all().len());
        for w in ranked.windows(2) {
            assert!(w[0].recovered >= w[1].recovered);
        }
        let spurious = rank.ranked_spurious();
        assert_eq!(spurious.len(), SpuriousCause::all().len());
        // Dropping spurious edges can only help precision.
        for s in &spurious {
            assert!(s.precision_gain_pct >= 0.0, "{s:?}");
        }
    }
}
