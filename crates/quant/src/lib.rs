//! Root-cause quantification and a statistical property-access bug
//! finder for the *aji* reproduction.
//!
//! The oracle (`aji-oracle`) *names* the causes of residual unsoundness
//! and imprecision; this crate *prices* them and then turns the same
//! instrumentation loose on a different bug class:
//!
//! * [`rank_corpus`] — **counterfactual quantification**: for every
//!   triage [`Cause`](aji_oracle::Cause) family, how much recall would a
//!   fix buy? The higher-order-proxy family gets a real re-solve with
//!   the §6 proxy-read hint class force-enabled; every other family gets
//!   its patch-edges upper bound. Spurious-cause families are priced in
//!   precision points symmetrically. The result is a ranked table — a
//!   priority list over the paper's limitation section.
//! * [`find_anomalies`] — the **statistical finder**: the interpreter's
//!   per-shape property-access observations
//!   ([`aji_interp::InterpOptions::observe_props`]), mined into a
//!   corpus-wide frequency model; misses whose name sits at edit
//!   distance 1 from a shape key and never worked anywhere are flagged
//!   as typos. [`evaluate`] measures precision/recall against the
//!   corpus generator's injected-defect manifests
//!   ([`aji_corpus::generate_with_manifest`]).
//!
//! The `aji-quant` binary fronts both; its JSON report is byte-identical
//! across runs and thread counts (`scripts/check-hermetic.sh` enforces
//! this, and `aji-report --diff` gates the committed
//! `BENCH_pr10_quant.json` snapshot). See EXPERIMENTS.md ("Root-cause
//! quantification" and "Property-access finder") for how to read the
//! output.
//!
//! # Example
//!
//! ```
//! use aji_quant::{find_anomalies, evaluate, FinderOptions};
//!
//! let mut cfg = aji_corpus::GenConfig::small("demo", 7);
//! cfg.typo_injections = 1;
//! let (project, typos) = aji_corpus::generate_with_manifest(&cfg);
//! let report = find_anomalies(vec![project], &FinderOptions::default(), 1);
//! let eval = evaluate(&report, &[("demo".to_string(), typos)]);
//! assert_eq!(eval.recovered, 1); // the injected typo is found
//! ```

#![warn(missing_docs)]

pub mod finder;
pub mod rank;

pub use finder::{
    evaluate, find_anomalies, observe_project, Candidate, EvalReport, FinderOptions, FinderReport,
    ProjectObservations,
};
pub use rank::{
    rank_corpus, rank_project, CauseImpact, CorpusRank, ProjectRank, SpuriousImpact,
};
