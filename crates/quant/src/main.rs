//! `aji-quant` — root-cause quantification and the property-access
//! finder's command line.
//!
//! Runs the counterfactual cause ranking over the hand-written pattern
//! corpus, then the statistical finder over the same corpus plus a
//! deterministic typo-seeded generated corpus, and evaluates the finder
//! against the injected-defect manifests. Output is deterministic in
//! `(--typo-seed, --typo-projects, --threshold)` whatever `--threads`
//! says; `--json` prints the full report, `--obs FILE` additionally
//! writes an `aji-obs` ObsReport.
//!
//! Exit codes: `0` ok, `1` pipeline errors, `2` usage.

use aji_oracle::OracleOptions;
use aji_quant::{evaluate, find_anomalies, rank_corpus, FinderOptions};
use aji_support::Json;
use std::process::ExitCode;
use std::sync::Arc;

struct Cli {
    threads: usize,
    json: bool,
    threshold: f64,
    typo_projects: usize,
    typo_seed: u64,
    obs: Option<String>,
}

const USAGE: &str = "usage: aji-quant [options]

Root-cause quantification: prices every triage cause family by the
recall a fix would buy (counterfactual re-solve / patch-edges upper
bound), and runs the statistical property-access finder with a
precision/recall evaluation against generator-injected typos.

options:
  --threads N        worker threads, 0 = auto (default: AJI_THREADS or 0)
  --json             print the full deterministic JSON report
  --threshold F      finder confidence threshold (default 0.9)
  --typo-projects N  generated projects in the finder's seeded
                     evaluation corpus (default 8)
  --typo-seed N      base seed of the evaluation corpus (default 97)
  --obs FILE         also write an aji-obs ObsReport (JSON) to FILE
  -h, --help         show this help

exit codes: 0 = ok, 1 = pipeline errors, 2 = usage error";

fn parse_args(args: Vec<String>) -> Result<Cli, String> {
    let mut cli = Cli {
        threads: aji_support::par::threads_from_env(),
        json: false,
        threshold: 0.9,
        typo_projects: 8,
        typo_seed: 97,
        obs: None,
    };
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        let mut take = |flag: &str| -> Result<String, String> {
            it.next().ok_or_else(|| format!("{flag} expects a value"))
        };
        match a.as_str() {
            "--threads" => {
                let v = take("--threads")?;
                cli.threads = v
                    .parse()
                    .map_err(|_| format!("invalid --threads value: {v}"))?;
            }
            "--threshold" => {
                let v = take("--threshold")?;
                cli.threshold = v
                    .parse()
                    .map_err(|_| format!("invalid --threshold value: {v}"))?;
            }
            "--typo-projects" => {
                let v = take("--typo-projects")?;
                cli.typo_projects = v
                    .parse()
                    .map_err(|_| format!("invalid --typo-projects value: {v}"))?;
            }
            "--typo-seed" => {
                let v = take("--typo-seed")?;
                cli.typo_seed = v
                    .parse()
                    .map_err(|_| format!("invalid --typo-seed value: {v}"))?;
            }
            "--obs" => cli.obs = Some(take("--obs")?),
            "--json" => cli.json = true,
            other => match other.strip_prefix("--threads=") {
                Some(v) => {
                    cli.threads = v
                        .parse()
                        .map_err(|_| format!("invalid --threads value: {v}"))?;
                }
                None => return Err(format!("unknown argument: {other}")),
            },
        }
    }
    Ok(cli)
}

/// The finder's seeded evaluation corpus: small generated projects with
/// typo injections on, plus their manifests. Deterministic in
/// `(count, base_seed)`.
fn typo_corpus(
    count: usize,
    base_seed: u64,
) -> (Vec<aji_ast::Project>, Vec<(String, Vec<aji_corpus::InjectedTypo>)>) {
    let mut projects = Vec::with_capacity(count);
    let mut manifests = Vec::with_capacity(count);
    for (i, mut cfg) in aji_corpus::population_configs(count, base_seed)
        .into_iter()
        .enumerate()
    {
        cfg.name = format!("typo-{i:03}");
        cfg.typo_injections = 2 + i % 3;
        let (p, typos) = aji_corpus::generate_with_manifest(&cfg);
        manifests.push((p.name.clone(), typos));
        projects.push(p);
    }
    (projects, manifests)
}

fn run(cli: &Cli) -> ExitCode {
    let patterns = aji_corpus::pattern_projects();
    let (typo_projects, manifests) = typo_corpus(cli.typo_projects, cli.typo_seed);
    // Rank over patterns *and* the generated projects: the generated
    // hard-dispatch idiom is what populates the higher-order-proxy
    // family, whose counterfactual is the measured re-solve.
    let mut rank_corpus_projects = patterns.clone();
    rank_corpus_projects.extend(typo_projects.clone());
    let ranking = rank_corpus(rank_corpus_projects, &OracleOptions::default(), cli.threads);

    let finder_opts = FinderOptions {
        threshold: cli.threshold,
        ..FinderOptions::default()
    };
    let mut finder_corpus = patterns;
    finder_corpus.extend(typo_projects);
    let finder = find_anomalies(finder_corpus, &finder_opts, cli.threads);
    let eval = evaluate(&finder, &manifests);

    if cli.json {
        // Top-level keys carry the `quant.` prefix so the perf gate's
        // guarded counter-family check covers the whole report.
        let report = Json::obj(vec![
            ("bench", Json::Str("pr10_quant".to_string())),
            ("quant.ranking", ranking.to_json()),
            ("quant.finder", finder.to_json()),
            ("quant.eval", eval.to_json()),
        ]);
        println!("{report}");
    } else {
        println!(
            "ranking: {} project(s), {} error(s) | {} dynamic edges, {} missed",
            ranking.projects.len(),
            ranking.errors.len(),
            ranking
                .projects
                .iter()
                .map(|p| p.dynamic_edges)
                .sum::<usize>(),
            ranking.projects.iter().map(|p| p.missed).sum::<usize>(),
        );
        for c in ranking.ranked() {
            if c.missed > 0 {
                println!(
                    "  {:<20} missed={:<4} recovered={:<4} (+{:.1}% recall, {})",
                    c.cause, c.missed, c.recovered, c.recall_gain_pct, c.strategy
                );
            }
        }
        for s in ranking.ranked_spurious() {
            if s.spurious > 0 {
                println!(
                    "  {:<20} spurious={:<3} (+{:.2}% precision if dropped)",
                    s.cause, s.spurious, s.precision_gain_pct
                );
            }
        }
        println!(
            "finder: {} candidate(s), {} flagged at threshold {}",
            finder.candidates.len(),
            finder.flagged().len(),
            finder.threshold,
        );
        println!(
            "eval: {} injected, {} recovered ({:.1}% recall), precision {:.1}%",
            eval.injected, eval.recovered, eval.recall_pct, eval.precision_pct,
        );
    }
    if ranking.errors.is_empty() && finder.errors.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    let cli = match parse_args(args) {
        Ok(cli) => cli,
        Err(e) => {
            eprintln!("aji-quant: {e}");
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    match &cli.obs {
        Some(path) => {
            let reg = Arc::new(aji_obs::Registry::new());
            let code = aji_obs::scoped(&reg, || run(&cli));
            if let Err(e) = std::fs::write(path, reg.report().to_json_string()) {
                eprintln!("aji-quant: cannot write {path}: {e}");
                return ExitCode::from(2);
            }
            code
        }
        None => run(&cli),
    }
}
