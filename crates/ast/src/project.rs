//! In-memory Node.js-style project model.
//!
//! The analyses in this workspace are whole-program analyses over a virtual
//! file tree: application modules at the top level and dependencies under
//! `node_modules/<package>/`, mirroring how the paper's benchmarks are laid
//! out on disk. A [`Project`] owns the file contents and the metadata the
//! experiments need (main module, test driver, vulnerability annotations).

use aji_support::Json;
use crate::source::SourceMap;
use std::collections::BTreeSet;

/// One file of a [`Project`].
#[derive(Debug, Clone)]
pub struct ProjectFile {
    /// Virtual path, e.g. `lib/app.js` or `node_modules/mixin/index.js`.
    pub path: String,
    /// File contents.
    pub src: String,
}

/// Annotation marking a function in a dependency as having a known
/// vulnerability.
///
/// This stands in for the CVE database the paper uses in its §5 reachability
/// study: the experiment counts how many annotated functions are reachable
/// in the computed call graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VulnSpec {
    /// Identifier of the vulnerability, e.g. `CVE-SYN-0001`.
    pub id: String,
    /// Path of the file containing the vulnerable function.
    pub path: String,
    /// Name of the vulnerable function (must be a named function in that
    /// file).
    pub function: String,
}

/// An in-memory JavaScript project: virtual files plus experiment metadata.
#[derive(Debug, Clone)]
pub struct Project {
    /// Project name (used in benchmark tables).
    pub name: String,
    /// All files, in insertion order.
    pub files: Vec<ProjectFile>,
    /// Path of the main (entry) module.
    pub main: String,
    /// Path of the test-driver module used to produce dynamic call graphs,
    /// if the project ships one.
    pub test_driver: Option<String>,
    /// Known-vulnerability annotations for the §5 reachability study.
    pub vulns: Vec<VulnSpec>,
}

impl Project {
    /// Creates an empty project whose main module is `index.js`.
    pub fn new(name: impl Into<String>) -> Self {
        Project {
            name: name.into(),
            files: Vec::new(),
            main: "index.js".to_string(),
            test_driver: None,
            vulns: Vec::new(),
        }
    }

    /// Adds a file. Paths are `/`-separated and relative to the project
    /// root; dependency files live under `node_modules/<pkg>/`.
    pub fn add_file(&mut self, path: impl Into<String>, src: impl Into<String>) -> &mut Self {
        self.files.push(ProjectFile {
            path: path.into(),
            src: src.into(),
        });
        self
    }

    /// Sets the main (entry) module path.
    pub fn with_main(mut self, path: impl Into<String>) -> Self {
        self.main = path.into();
        self
    }

    /// Sets the test-driver module path.
    pub fn with_test_driver(mut self, path: impl Into<String>) -> Self {
        self.test_driver = Some(path.into());
        self
    }

    /// Registers a vulnerability annotation.
    pub fn add_vuln(
        &mut self,
        id: impl Into<String>,
        path: impl Into<String>,
        function: impl Into<String>,
    ) -> &mut Self {
        self.vulns.push(VulnSpec {
            id: id.into(),
            path: path.into(),
            function: function.into(),
        });
        self
    }

    /// Looks up a file by exact path.
    pub fn file(&self, path: &str) -> Option<&ProjectFile> {
        self.files.iter().find(|f| f.path == path)
    }

    /// Whether a path belongs to the main package (i.e. is not inside
    /// `node_modules`). The paper measures function reachability from the
    /// module functions of the main package.
    pub fn is_main_package_path(path: &str) -> bool {
        !path.starts_with("node_modules/") && !path.contains("/node_modules/")
    }

    /// Names of all packages: the main package plus every directly vendored
    /// `node_modules` package (nested `node_modules` count too, matching
    /// how npm trees are counted in the paper's Table 1).
    pub fn package_names(&self) -> BTreeSet<String> {
        let mut pkgs = BTreeSet::new();
        pkgs.insert(self.name.clone());
        for f in &self.files {
            let mut rest = f.path.as_str();
            while let Some(idx) = rest.find("node_modules/") {
                let after = &rest[idx + "node_modules/".len()..];
                let pkg = match after.find('/') {
                    Some(end) => &after[..end],
                    None => after,
                };
                if !pkg.is_empty() {
                    pkgs.insert(pkg.to_string());
                }
                rest = after;
            }
        }
        pkgs
    }

    /// Number of packages (main + dependencies).
    pub fn package_count(&self) -> usize {
        self.package_names().len()
    }

    /// Number of modules (files).
    pub fn module_count(&self) -> usize {
        self.files.len()
    }

    /// Total code size in bytes.
    pub fn code_size_bytes(&self) -> usize {
        self.files.iter().map(|f| f.src.len()).sum()
    }

    /// Builds a [`SourceMap`] over the project's files, preserving file
    /// order so that `FileId`s are stable for a given project.
    pub fn source_map(&self) -> SourceMap {
        let mut sm = SourceMap::new();
        for f in &self.files {
            sm.add_file(f.path.clone(), f.src.clone());
        }
        sm
    }

    /// Paths of all main-package modules, in file order.
    pub fn main_package_paths(&self) -> Vec<&str> {
        self.files
            .iter()
            .map(|f| f.path.as_str())
            .filter(|p| Self::is_main_package_path(p))
            .collect()
    }

    /// Serializes the whole project — name, entry points, files with
    /// their sources, vulnerability annotations — as a JSON value.
    ///
    /// This is the over-the-wire representation `aji serve` clients send
    /// with an `analyze`/`oracle` request (see DAEMON.md); file order is
    /// preserved, so [`Project::from_json`] reconstructs a project whose
    /// `FileId`s (and therefore every analysis result) match the
    /// original's exactly.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let mut pairs = vec![
            ("name", Json::Str(self.name.clone())),
            ("main", Json::Str(self.main.clone())),
        ];
        if let Some(driver) = &self.test_driver {
            pairs.push(("test_driver", Json::Str(driver.clone())));
        }
        pairs.push((
            "files",
            Json::Arr(
                self.files
                    .iter()
                    .map(|f| {
                        Json::obj(vec![
                            ("path", Json::Str(f.path.clone())),
                            ("src", Json::Str(f.src.clone())),
                        ])
                    })
                    .collect(),
            ),
        ));
        if !self.vulns.is_empty() {
            pairs.push((
                "vulns",
                Json::Arr(
                    self.vulns
                        .iter()
                        .map(|v| {
                            Json::obj(vec![
                                ("id", Json::Str(v.id.clone())),
                                ("path", Json::Str(v.path.clone())),
                                ("function", Json::Str(v.function.clone())),
                            ])
                        })
                        .collect(),
                ),
            ));
        }
        Json::obj(pairs)
    }

    /// Reconstructs a project from [`Project::to_json`]'s representation.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message naming the missing or mistyped
    /// field when the document does not describe a project.
    pub fn from_json(doc: &Json) -> Result<Project, String> {
        let str_field = |d: &Json, key: &str| -> Result<String, String> {
            d.get(key)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("project JSON lacks string field \"{key}\""))
        };
        let mut project = Project::new(str_field(doc, "name")?);
        project.main = str_field(doc, "main")?;
        project.test_driver = doc
            .get("test_driver")
            .and_then(Json::as_str)
            .map(str::to_string);
        let files = doc
            .get("files")
            .and_then(Json::as_arr)
            .ok_or("project JSON lacks array field \"files\"")?;
        for f in files {
            project.add_file(str_field(f, "path")?, str_field(f, "src")?);
        }
        if let Some(vulns) = doc.get("vulns").and_then(Json::as_arr) {
            for v in vulns {
                project.add_vuln(
                    str_field(v, "id")?,
                    str_field(v, "path")?,
                    str_field(v, "function")?,
                );
            }
        }
        Ok(project)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Project {
        let mut p = Project::new("myapp");
        p.add_file("index.js", "var a = require('dep');");
        p.add_file("lib/util.js", "module.exports = {};");
        p.add_file("node_modules/dep/index.js", "module.exports = 1;");
        p.add_file(
            "node_modules/dep/node_modules/inner/index.js",
            "module.exports = 2;",
        );
        p
    }

    #[test]
    fn package_counting() {
        let p = sample();
        let pkgs = p.package_names();
        assert!(pkgs.contains("myapp"));
        assert!(pkgs.contains("dep"));
        assert!(pkgs.contains("inner"));
        assert_eq!(p.package_count(), 3);
    }

    #[test]
    fn main_package_detection() {
        assert!(Project::is_main_package_path("index.js"));
        assert!(Project::is_main_package_path("lib/a.js"));
        assert!(!Project::is_main_package_path("node_modules/x/index.js"));
        assert!(!Project::is_main_package_path(
            "pkg/node_modules/x/index.js"
        ));
    }

    #[test]
    fn main_package_paths_in_order() {
        let p = sample();
        assert_eq!(p.main_package_paths(), vec!["index.js", "lib/util.js"]);
    }

    #[test]
    fn source_map_matches_files() {
        let p = sample();
        let sm = p.source_map();
        assert_eq!(sm.len(), 4);
        assert_eq!(sm.file(sm.find("lib/util.js").unwrap()).path, "lib/util.js");
    }

    #[test]
    fn code_size_and_counts() {
        let p = sample();
        assert_eq!(p.module_count(), 4);
        assert!(p.code_size_bytes() > 0);
        assert!(p.file("index.js").is_some());
        assert!(p.file("nope.js").is_none());
    }

    #[test]
    fn project_json_roundtrips() {
        let mut p = sample();
        p.test_driver = Some("index.js".to_string());
        p.add_vuln("CVE-SYN-1", "node_modules/dep/index.js", "evil");
        let doc = p.to_json();
        let back = Project::from_json(&doc).unwrap();
        assert_eq!(back.name, p.name);
        assert_eq!(back.main, p.main);
        assert_eq!(back.test_driver, p.test_driver);
        assert_eq!(back.files.len(), p.files.len());
        for (a, b) in back.files.iter().zip(&p.files) {
            assert_eq!((a.path.as_str(), a.src.as_str()), (b.path.as_str(), b.src.as_str()));
        }
        assert_eq!(back.vulns, p.vulns);
        // Re-serialization is byte-identical (the wire format is stable).
        assert_eq!(back.to_json().to_string(), doc.to_string());
        // Errors name the offending field.
        let err = Project::from_json(&Json::obj(vec![])).unwrap_err();
        assert!(err.contains("name"), "{err}");
    }

    #[test]
    fn vuln_annotations() {
        let mut p = sample();
        p.add_vuln("CVE-SYN-1", "node_modules/dep/index.js", "evil");
        assert_eq!(p.vulns.len(), 1);
        assert_eq!(p.vulns[0].function, "evil");
    }
}
