//! Source management, AST and project model for the *aji* toolchain — a Rust
//! reproduction of *Reducing Static Analysis Unsoundness with Approximate
//! Interpretation* (PLDI 2024).
//!
//! This crate is the foundation shared by the parser, the interpreter, the
//! approximate-interpretation pre-analysis and the static points-to
//! analysis:
//!
//! * [`SourceMap`] / [`Span`] / [`Loc`] — source management; [`Loc`] (file,
//!   line, column) is the allocation-site identity used by both the dynamic
//!   hints and the static abstraction.
//! * [`ast`] — the JavaScript AST with project-unique [`NodeId`]s.
//! * [`Project`] — an in-memory Node.js-style project (virtual file tree
//!   with `node_modules`, a main module and an optional test driver).
//! * [`visit`] — read-only AST visitors.
//! * [`mod@print`] — an AST-to-source printer used for testing and diagnostics.
//!
//! # Example
//!
//! ```
//! use aji_ast::{Project, SourceMap};
//!
//! let mut project = Project::new("hello");
//! project.add_file("index.js", "var x = 1;");
//! let sm: SourceMap = project.source_map();
//! assert_eq!(sm.len(), 1);
//! ```

#![warn(missing_docs)]

pub mod ast;
pub mod print;
mod project;
mod source;
pub mod visit;

pub use ast::{Module, NodeId, NodeIdGen};
pub use project::{Project, ProjectFile, VulnSpec};
pub use source::{FileId, Loc, SourceFile, SourceMap, Span};

/// Converts a number to its JavaScript property-name string (`ToString`
/// applied to a numeric key).
///
/// Integral values in safe range print without a fractional part, matching
/// JavaScript's behavior for array indices and numeric object keys.
pub fn num_to_prop_name(n: f64) -> String {
    if n == 0.0 {
        // JS: String(0) === "0" and String(-0) === "0".
        return "0".to_string();
    }
    if n.is_nan() {
        return "NaN".to_string();
    }
    if n.is_infinite() {
        return if n > 0.0 { "Infinity" } else { "-Infinity" }.to_string();
    }
    if n.fract() == 0.0 && n.abs() < 1e21 {
        format!("{}", n as i64)
    } else {
        format!("{}", n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn num_to_prop_name_integers() {
        assert_eq!(num_to_prop_name(0.0), "0");
        assert_eq!(num_to_prop_name(-0.0), "0");
        assert_eq!(num_to_prop_name(42.0), "42");
        assert_eq!(num_to_prop_name(-7.0), "-7");
    }

    #[test]
    fn num_to_prop_name_non_integers() {
        assert_eq!(num_to_prop_name(1.5), "1.5");
        assert_eq!(num_to_prop_name(f64::NAN), "NaN");
        assert_eq!(num_to_prop_name(f64::INFINITY), "Infinity");
        assert_eq!(num_to_prop_name(f64::NEG_INFINITY), "-Infinity");
    }
}
