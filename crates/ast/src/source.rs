//! Source management: files, spans and the `Loc` tokens used as
//! allocation-site identifiers throughout the analyses.
//!
//! The paper identifies every object and function by the source location of
//! the operation that created it (*file, line, column*). [`Loc`] is exactly
//! that triple and is the key type shared by the dynamic pre-analysis (which
//! records hints in terms of `Loc`s) and the static analysis (which uses
//! `Loc`s as allocation-site abstractions).

use aji_support::{FromJson, Json, JsonError, ToJson};
use std::fmt;

/// Identifier of a source file within a [`SourceMap`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct FileId(pub u32);

impl ToJson for FileId {
    fn to_json(&self) -> Json {
        Json::Num(self.0 as f64)
    }
}

impl FromJson for FileId {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        u32::from_json(v).map(FileId)
    }
}

impl FileId {
    /// Returns the index of this file in its [`SourceMap`].
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A byte range within a single source file.
///
/// Spans are produced by the parser and converted to human-readable [`Loc`]s
/// through the owning [`SourceMap`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Span {
    /// File the span belongs to.
    pub file: FileId,
    /// Byte offset of the first character.
    pub lo: u32,
    /// Byte offset one past the last character.
    pub hi: u32,
}

impl Span {
    /// Creates a span covering bytes `lo..hi` of `file`.
    pub fn new(file: FileId, lo: u32, hi: u32) -> Self {
        Span { file, lo, hi }
    }

    /// A zero-width placeholder span at the start of `file`.
    pub fn dummy(file: FileId) -> Self {
        Span { file, lo: 0, hi: 0 }
    }

    /// Smallest span containing both `self` and `other`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the spans come from different files.
    pub fn to(self, other: Span) -> Span {
        debug_assert_eq!(self.file, other.file);
        Span {
            file: self.file,
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }

    /// Number of bytes covered by the span.
    pub fn len(self) -> u32 {
        self.hi - self.lo
    }

    /// Whether the span covers zero bytes.
    pub fn is_empty(self) -> bool {
        self.lo == self.hi
    }
}

/// Spans serialize as `[file, lo, hi]`.
impl ToJson for Span {
    fn to_json(&self) -> Json {
        Json::Arr(vec![
            self.file.to_json(),
            Json::Num(self.lo as f64),
            Json::Num(self.hi as f64),
        ])
    }
}

impl FromJson for Span {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v.as_arr() {
            Some([f, lo, hi]) => Ok(Span {
                file: FileId::from_json(f)?,
                lo: u32::from_json(lo)?,
                hi: u32::from_json(hi)?,
            }),
            _ => Err(JsonError::shape("expected [file, lo, hi] span")),
        }
    }
}

/// A source location: file, 1-based line and 1-based column.
///
/// This is the paper's `Loc`: the identity of allocation sites, function
/// definitions and dynamic-property-access operations. Two objects created
/// by the same syntactic operation share a `Loc`, which is what makes the
/// dynamic hints consumable by an allocation-site-based static analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Loc {
    /// File containing the operation.
    pub file: FileId,
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number.
    pub col: u32,
}

impl Loc {
    /// Column marker for synthetic "prototype object of the function at
    /// this location" sites (real columns never come close).
    pub const PROTO_COL_MARK: u32 = 1 << 24;

    /// Creates a location from its components.
    pub fn new(file: FileId, line: u32, col: u32) -> Self {
        Loc { file, line, col }
    }

    /// The sentinel site of a module's initial `exports` object.
    pub fn module_exports_site(file: FileId) -> Loc {
        Loc::new(file, 0, 0)
    }

    /// The sentinel site of a module's `module` object.
    pub fn module_object_site(file: FileId) -> Loc {
        Loc::new(file, 0, 1)
    }

    /// The sentinel site of the `prototype` object belonging to the
    /// function allocated at `self`.
    pub fn prototype_site(self) -> Loc {
        Loc::new(self.file, self.line, self.col + Self::PROTO_COL_MARK)
    }

    /// If this is a prototype sentinel, the owning function's location.
    pub fn prototype_owner(self) -> Option<Loc> {
        if self.col >= Self::PROTO_COL_MARK {
            Some(Loc::new(self.file, self.line, self.col - Self::PROTO_COL_MARK))
        } else {
            None
        }
    }
}

impl fmt::Display for Loc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}:{}:{}", self.file.0, self.line, self.col)
    }
}

/// Locations serialize as `[file, line, col]` — compact, and usable as the
/// key half of serialized hint maps.
impl ToJson for Loc {
    fn to_json(&self) -> Json {
        Json::Arr(vec![
            self.file.to_json(),
            Json::Num(self.line as f64),
            Json::Num(self.col as f64),
        ])
    }
}

impl FromJson for Loc {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v.as_arr() {
            Some([f, line, col]) => Ok(Loc {
                file: FileId::from_json(f)?,
                line: u32::from_json(line)?,
                col: u32::from_json(col)?,
            }),
            _ => Err(JsonError::shape("expected [file, line, col] loc")),
        }
    }
}

/// A single source file: a path (virtual; the analyses run over in-memory
/// projects) and its full text, with a precomputed line-start table.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Virtual path of the file, e.g. `node_modules/express/lib/express.js`.
    pub path: String,
    /// Complete file contents.
    pub src: String,
    line_starts: Vec<u32>,
}

impl SourceFile {
    /// Creates a source file and computes its line table.
    pub fn new(path: impl Into<String>, src: impl Into<String>) -> Self {
        let src = src.into();
        let mut line_starts = vec![0u32];
        for (i, b) in src.bytes().enumerate() {
            if b == b'\n' {
                line_starts.push(i as u32 + 1);
            }
        }
        SourceFile {
            path: path.into(),
            src,
            line_starts,
        }
    }

    /// Converts a byte offset into a 1-based (line, column) pair.
    pub fn line_col(&self, offset: u32) -> (u32, u32) {
        let line = match self.line_starts.binary_search(&offset) {
            Ok(l) => l,
            Err(l) => l - 1,
        };
        let col = offset - self.line_starts[line];
        (line as u32 + 1, col + 1)
    }

    /// Returns the text of line `line` (1-based), without the newline.
    pub fn line_text(&self, line: u32) -> &str {
        let idx = (line - 1) as usize;
        let start = self.line_starts[idx] as usize;
        let end = self
            .line_starts
            .get(idx + 1)
            .map(|&e| e as usize)
            .unwrap_or(self.src.len());
        self.src[start..end].trim_end_matches('\n')
    }

    /// Number of lines in the file.
    pub fn line_count(&self) -> usize {
        self.line_starts.len()
    }
}

/// A collection of source files with stable [`FileId`]s.
///
/// Shared by the parser (to produce spans), the interpreter (to resolve
/// `require` paths) and the analyses (to render locations).
#[derive(Debug, Clone, Default)]
pub struct SourceMap {
    files: Vec<SourceFile>,
}

impl SourceMap {
    /// Creates an empty source map.
    pub fn new() -> Self {
        SourceMap::default()
    }

    /// Adds a file and returns its id.
    pub fn add_file(&mut self, path: impl Into<String>, src: impl Into<String>) -> FileId {
        let id = FileId(self.files.len() as u32);
        self.files.push(SourceFile::new(path, src));
        id
    }

    /// Looks up a file by id.
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this map.
    pub fn file(&self, id: FileId) -> &SourceFile {
        &self.files[id.index()]
    }

    /// Finds a file by exact path.
    pub fn find(&self, path: &str) -> Option<FileId> {
        self.files
            .iter()
            .position(|f| f.path == path)
            .map(|i| FileId(i as u32))
    }

    /// Number of files in the map.
    pub fn len(&self) -> usize {
        self.files.len()
    }

    /// Whether the map contains no files.
    pub fn is_empty(&self) -> bool {
        self.files.is_empty()
    }

    /// Iterates over `(FileId, &SourceFile)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (FileId, &SourceFile)> {
        self.files
            .iter()
            .enumerate()
            .map(|(i, f)| (FileId(i as u32), f))
    }

    /// Converts the start of a span into a [`Loc`].
    pub fn loc(&self, span: Span) -> Loc {
        let (line, col) = self.file(span.file).line_col(span.lo);
        Loc::new(span.file, line, col)
    }

    /// Renders a location as `path:line:col`.
    pub fn display_loc(&self, loc: Loc) -> String {
        format!("{}:{}:{}", self.file(loc.file).path, loc.line, loc.col)
    }

    /// Total size of all files in bytes.
    pub fn total_bytes(&self) -> usize {
        self.files.iter().map(|f| f.src.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_col_basics() {
        let f = SourceFile::new("a.js", "ab\ncd\n\nxyz");
        assert_eq!(f.line_col(0), (1, 1));
        assert_eq!(f.line_col(1), (1, 2));
        assert_eq!(f.line_col(3), (2, 1));
        assert_eq!(f.line_col(4), (2, 2));
        assert_eq!(f.line_col(6), (3, 1));
        assert_eq!(f.line_col(7), (4, 1));
        assert_eq!(f.line_col(9), (4, 3));
    }

    #[test]
    fn line_text_and_count() {
        let f = SourceFile::new("a.js", "first\nsecond\nthird");
        assert_eq!(f.line_count(), 3);
        assert_eq!(f.line_text(1), "first");
        assert_eq!(f.line_text(2), "second");
        assert_eq!(f.line_text(3), "third");
    }

    #[test]
    fn source_map_add_and_find() {
        let mut sm = SourceMap::new();
        let a = sm.add_file("a.js", "x");
        let b = sm.add_file("lib/b.js", "y");
        assert_ne!(a, b);
        assert_eq!(sm.find("lib/b.js"), Some(b));
        assert_eq!(sm.find("missing.js"), None);
        assert_eq!(sm.len(), 2);
        assert_eq!(sm.total_bytes(), 2);
    }

    #[test]
    fn span_to_loc() {
        let mut sm = SourceMap::new();
        let a = sm.add_file("a.js", "var x = 1;\nvar y = 2;");
        let span = Span::new(a, 11, 14);
        let loc = sm.loc(span);
        assert_eq!(loc, Loc::new(a, 2, 1));
        assert_eq!(sm.display_loc(loc), "a.js:2:1");
    }

    #[test]
    fn span_join() {
        let f = FileId(0);
        let s = Span::new(f, 3, 5).to(Span::new(f, 10, 12));
        assert_eq!((s.lo, s.hi), (3, 12));
        assert_eq!(s.len(), 9);
        assert!(!s.is_empty());
        assert!(Span::dummy(f).is_empty());
    }

    #[test]
    fn loc_display() {
        let loc = Loc::new(FileId(2), 10, 4);
        assert_eq!(loc.to_string(), "f2:10:4");
    }

    #[test]
    fn offset_at_line_start_maps_to_col_one() {
        let f = SourceFile::new("a.js", "\n\nx");
        assert_eq!(f.line_col(2), (3, 1));
    }

    #[test]
    fn loc_json_roundtrip() {
        for loc in [
            Loc::new(FileId(0), 1, 1),
            Loc::new(FileId(7), 1234, 56),
            Loc::module_exports_site(FileId(3)),
            Loc::new(FileId(1), 9, 2).prototype_site(),
        ] {
            let j = loc.to_json();
            let text = j.to_string();
            let back = Loc::from_json(&Json::parse(&text).unwrap()).unwrap();
            assert_eq!(back, loc, "via {text}");
        }
    }

    #[test]
    fn span_and_fileid_json_roundtrip() {
        let s = Span::new(FileId(4), 10, 25);
        let back = Span::from_json(&Json::parse(&s.to_json().to_string()).unwrap()).unwrap();
        assert_eq!(back, s);
        let f = FileId(99);
        assert_eq!(FileId::from_json(&f.to_json()).unwrap(), f);
    }

    #[test]
    fn loc_json_rejects_wrong_shape() {
        assert!(Loc::from_json(&Json::parse("[1, 2]").unwrap()).is_err());
        assert!(Loc::from_json(&Json::parse("\"f0:1:1\"").unwrap()).is_err());
        assert!(Loc::from_json(&Json::parse("[1, 2, 3.5]").unwrap()).is_err());
    }
}
