//! Abstract syntax tree for the JavaScript subset handled by the toolchain.
//!
//! Every expression, statement and pattern carries a [`NodeId`] (globally
//! unique within one parsed project — the static analysis uses them as
//! constraint-variable keys) and a [`Span`] (from which allocation-site
//! [`crate::Loc`]s are derived).

use crate::source::Span;
use std::fmt;

/// Identifier of an AST node, unique across all files parsed with the same
/// [`NodeIdGen`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Returns the id as an index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Generator of fresh [`NodeId`]s, shared across the files of one project so
/// that node ids are project-unique.
///
/// Cloning forks the counter: ids minted by the clone are unique against
/// everything minted *before* the fork, which is what consumers that take
/// a snapshot of a parsed project (e.g. the interpreter, for `eval`) need.
#[derive(Debug, Clone, Default)]
pub struct NodeIdGen {
    next: u32,
}

impl NodeIdGen {
    /// Creates a generator starting at id 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns a fresh id.
    pub fn fresh(&mut self) -> NodeId {
        let id = NodeId(self.next);
        self.next += 1;
        id
    }

    /// Number of ids handed out so far.
    pub fn count(&self) -> usize {
        self.next as usize
    }

    /// Creates a generator whose next fresh id is `n`.
    ///
    /// The `aji serve` parse cache uses this to resume project-wide id
    /// numbering after splicing in a cached module parse: a module reused
    /// at the same id offset is byte-identical to a fresh whole-project
    /// parse, so ids stay project-unique and analyses downstream cannot
    /// tell the difference.
    ///
    /// # Panics
    ///
    /// Panics if `n` exceeds `u32::MAX` ids.
    pub fn starting_at(n: usize) -> Self {
        NodeIdGen {
            next: u32::try_from(n).expect("node id space exhausted"),
        }
    }
}

/// A parsed module: the top-level statements of one source file.
#[derive(Debug, Clone)]
pub struct Module {
    /// Node id of the module itself (used as the module-function identity).
    pub id: NodeId,
    /// Span covering the whole file.
    pub span: Span,
    /// Top-level statements.
    pub body: Vec<Stmt>,
}

/// A statement.
#[derive(Debug, Clone)]
pub struct Stmt {
    /// Unique node id.
    pub id: NodeId,
    /// Source span.
    pub span: Span,
    /// The statement proper.
    pub kind: StmtKind,
}

/// Kinds of statements.
#[derive(Debug, Clone)]
pub enum StmtKind {
    /// Expression statement `E;`.
    Expr(Expr),
    /// `var`/`let`/`const` declaration list.
    VarDecl(VarDecl),
    /// Function declaration `function f(...) {...}`.
    FuncDecl(Box<Function>),
    /// Class declaration.
    ClassDecl(Box<Class>),
    /// `return E?;`
    Return(Option<Expr>),
    /// `if (test) cons else alt?`
    If {
        /// Condition.
        test: Expr,
        /// Then-branch.
        cons: Box<Stmt>,
        /// Optional else-branch.
        alt: Option<Box<Stmt>>,
    },
    /// `while (test) body`
    While {
        /// Loop condition.
        test: Expr,
        /// Loop body.
        body: Box<Stmt>,
    },
    /// `do body while (test);`
    DoWhile {
        /// Loop body.
        body: Box<Stmt>,
        /// Loop condition.
        test: Expr,
    },
    /// C-style `for`.
    For {
        /// Optional initializer.
        init: Option<ForInit>,
        /// Optional condition.
        test: Option<Expr>,
        /// Optional update expression.
        update: Option<Expr>,
        /// Loop body.
        body: Box<Stmt>,
    },
    /// `for (head in obj) body`
    ForIn {
        /// Loop variable.
        head: ForHead,
        /// Object whose enumerable property names are iterated.
        obj: Expr,
        /// Loop body.
        body: Box<Stmt>,
    },
    /// `for (head of iter) body`
    ForOf {
        /// Loop variable.
        head: ForHead,
        /// Iterable.
        iter: Expr,
        /// Loop body.
        body: Box<Stmt>,
    },
    /// Block `{ ... }`.
    Block(Vec<Stmt>),
    /// Empty statement `;`.
    Empty,
    /// `break label?;`
    Break(Option<String>),
    /// `continue label?;`
    Continue(Option<String>),
    /// `label: stmt`
    Labeled {
        /// Label name.
        label: String,
        /// Labeled statement.
        body: Box<Stmt>,
    },
    /// `switch (disc) { cases }`
    Switch {
        /// Discriminant.
        disc: Expr,
        /// Cases in source order.
        cases: Vec<SwitchCase>,
    },
    /// `throw E;`
    Throw(Expr),
    /// `try { .. } catch (p)? { .. } finally { .. }?`
    Try {
        /// Protected block.
        block: Vec<Stmt>,
        /// Optional catch clause.
        catch: Option<CatchClause>,
        /// Optional finally block.
        finally: Option<Vec<Stmt>>,
    },
    /// `debugger;` — a no-op.
    Debugger,
}

/// One `case`/`default` arm of a `switch`.
#[derive(Debug, Clone)]
pub struct SwitchCase {
    /// Span of the arm.
    pub span: Span,
    /// `None` for `default:`.
    pub test: Option<Expr>,
    /// Statements in the arm.
    pub body: Vec<Stmt>,
}

/// A `catch` clause.
#[derive(Debug, Clone)]
pub struct CatchClause {
    /// Bound exception pattern, absent for `catch { ... }`.
    pub param: Option<Pattern>,
    /// Handler body.
    pub body: Vec<Stmt>,
}

/// Initializer of a C-style `for`.
#[derive(Debug, Clone)]
pub enum ForInit {
    /// `for (var i = 0; ...)`
    VarDecl(VarDecl),
    /// `for (i = 0; ...)`
    Expr(Expr),
}

/// Head of `for-in` / `for-of`.
#[derive(Debug, Clone)]
pub enum ForHead {
    /// `for (var x ...)` / `for (const [a, b] ...)`
    VarDecl {
        /// Declaration kind.
        kind: VarKind,
        /// Bound pattern.
        pat: Pattern,
    },
    /// `for (x ...)` — assignment to an existing target.
    Target(Box<Expr>),
}

/// `var` / `let` / `const`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VarKind {
    /// Function-scoped `var`.
    Var,
    /// Block-scoped `let`.
    Let,
    /// Block-scoped `const`.
    Const,
}

impl fmt::Display for VarKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            VarKind::Var => "var",
            VarKind::Let => "let",
            VarKind::Const => "const",
        })
    }
}

/// A declaration list, e.g. `var a = 1, [b] = xs;`.
#[derive(Debug, Clone)]
pub struct VarDecl {
    /// Declaration kind.
    pub kind: VarKind,
    /// Individual declarators.
    pub decls: Vec<VarDeclarator>,
}

/// A single declarator within a [`VarDecl`].
#[derive(Debug, Clone)]
pub struct VarDeclarator {
    /// Span of the declarator.
    pub span: Span,
    /// Bound pattern.
    pub name: Pattern,
    /// Optional initializer.
    pub init: Option<Expr>,
}

/// An expression.
#[derive(Debug, Clone)]
pub struct Expr {
    /// Unique node id (the static analysis' constraint-variable key).
    pub id: NodeId,
    /// Source span.
    pub span: Span,
    /// The expression proper.
    pub kind: ExprKind,
}

/// Kinds of expressions.
#[derive(Debug, Clone)]
pub enum ExprKind {
    /// Numeric literal.
    Num(f64),
    /// String literal.
    Str(String),
    /// Boolean literal.
    Bool(bool),
    /// `null`.
    Null,
    /// Template literal `` `a${b}c` ``: `quasis.len() == exprs.len() + 1`.
    Template {
        /// Literal chunks.
        quasis: Vec<String>,
        /// Interpolated expressions.
        exprs: Vec<Expr>,
    },
    /// Regular expression literal, kept opaque.
    Regex {
        /// Pattern source between the slashes.
        pattern: String,
        /// Flags.
        flags: String,
    },
    /// Variable reference.
    Ident(String),
    /// `this`.
    This,
    /// Array literal; `None` elements are holes.
    Array(Vec<Option<ExprOrSpread>>),
    /// Object literal.
    Object(Vec<Property>),
    /// Function expression (`function (..) {..}` or named).
    Function(Box<Function>),
    /// Arrow function.
    Arrow(Box<Function>),
    /// Class expression.
    Class(Box<Class>),
    /// Unary operator application.
    Unary {
        /// Operator.
        op: UnaryOp,
        /// Operand.
        expr: Box<Expr>,
    },
    /// `++`/`--`.
    Update {
        /// Operator.
        op: UpdateOp,
        /// Prefix (`++x`) or postfix (`x++`).
        prefix: bool,
        /// Target (identifier or member expression).
        expr: Box<Expr>,
    },
    /// Binary (non-short-circuiting) operator application.
    Binary {
        /// Operator.
        op: BinaryOp,
        /// Left operand.
        left: Box<Expr>,
        /// Right operand.
        right: Box<Expr>,
    },
    /// `&&` / `||` / `??`.
    Logical {
        /// Operator.
        op: LogicalOp,
        /// Left operand.
        left: Box<Expr>,
        /// Right operand.
        right: Box<Expr>,
    },
    /// Assignment, possibly compound.
    Assign {
        /// Operator (`=`, `+=`, ...).
        op: AssignOp,
        /// Assignment target.
        target: AssignTarget,
        /// Right-hand side.
        value: Box<Expr>,
    },
    /// Conditional `test ? cons : alt`.
    Cond {
        /// Condition.
        test: Box<Expr>,
        /// Value if truthy.
        cons: Box<Expr>,
        /// Value if falsy.
        alt: Box<Expr>,
    },
    /// Function call.
    Call {
        /// Callee expression.
        callee: Box<Expr>,
        /// Arguments.
        args: Vec<ExprOrSpread>,
        /// Optional-chaining call `f?.()`.
        optional: bool,
    },
    /// `new` expression.
    New {
        /// Constructor expression.
        callee: Box<Expr>,
        /// Arguments.
        args: Vec<ExprOrSpread>,
    },
    /// Property access, static (`o.p`) or computed (`o[e]`).
    Member {
        /// Base object.
        obj: Box<Expr>,
        /// Property selector.
        prop: MemberProp,
        /// Optional chaining `o?.p`.
        optional: bool,
    },
    /// Comma sequence `(a, b, c)`.
    Seq(Vec<Expr>),
    /// Parenthesized expression (kept so the printer can round-trip).
    Paren(Box<Expr>),
}

/// Property selector of a member expression.
#[derive(Debug, Clone)]
pub enum MemberProp {
    /// Fixed property name `o.p`.
    Static(String),
    /// Dynamically computed name `o[e]` — the construct the paper targets.
    Computed(Box<Expr>),
}

/// Argument or array element that may be a spread.
#[derive(Debug, Clone)]
pub struct ExprOrSpread {
    /// Whether the value is spread (`...e`).
    pub spread: bool,
    /// The value.
    pub expr: Expr,
}

/// Entry in an object literal.
#[derive(Debug, Clone)]
pub enum Property {
    /// `key: value` (covers shorthand — the parser expands it).
    KeyValue {
        /// Property name.
        key: PropName,
        /// Property value.
        value: Expr,
    },
    /// `m() {..}`, `get p() {..}`, `set p(v) {..}`.
    Method {
        /// Property name.
        key: PropName,
        /// Ordinary method, getter or setter.
        kind: MethodKind,
        /// Underlying function.
        func: Box<Function>,
    },
    /// `...e` spread into the literal.
    Spread(Expr),
}

/// Method flavor in object literals and classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MethodKind {
    /// Plain method.
    Method,
    /// Getter.
    Get,
    /// Setter.
    Set,
}

/// Property name in object literals and classes.
#[derive(Debug, Clone)]
pub enum PropName {
    /// Identifier key `foo:`.
    Ident(String),
    /// String key `"foo":`.
    Str(String),
    /// Numeric key `42:`.
    Num(f64),
    /// Computed key `[e]:` — also a dynamic property write site.
    Computed(Box<Expr>),
}

impl PropName {
    /// The statically known name, if any.
    pub fn static_name(&self) -> Option<String> {
        match self {
            PropName::Ident(s) | PropName::Str(s) => Some(s.clone()),
            PropName::Num(n) => Some(crate::num_to_prop_name(*n)),
            PropName::Computed(_) => None,
        }
    }
}

/// A function: declaration, expression, arrow, method or class member.
#[derive(Debug, Clone)]
pub struct Function {
    /// Node id — the identity of the *function definition* (paper §3).
    pub id: NodeId,
    /// Span of the whole function.
    pub span: Span,
    /// Name, if any (declaration or named expression).
    pub name: Option<String>,
    /// Declared parameters in order.
    pub params: Vec<Param>,
    /// Rest parameter, if any.
    pub rest: Option<Pattern>,
    /// Function body.
    pub body: FuncBody,
    /// Whether this is an arrow function (lexical `this`, no `arguments`).
    pub is_arrow: bool,
    /// `async` flag (executed synchronously by the interpreter).
    pub is_async: bool,
    /// Generator flag (approximated by the interpreter).
    pub is_generator: bool,
}

/// A single declared parameter.
#[derive(Debug, Clone)]
pub struct Param {
    /// Binding pattern.
    pub pat: Pattern,
    /// Default value, if any.
    pub default: Option<Expr>,
}

/// Body of a function.
#[derive(Debug, Clone)]
pub enum FuncBody {
    /// Block body.
    Block(Vec<Stmt>),
    /// Arrow-function expression body.
    Expr(Box<Expr>),
}

/// A class declaration or expression.
#[derive(Debug, Clone)]
pub struct Class {
    /// Node id — allocation site of the class's constructor function.
    pub id: NodeId,
    /// Span of the whole class.
    pub span: Span,
    /// Name, if any.
    pub name: Option<String>,
    /// `extends` clause.
    pub super_class: Option<Box<Expr>>,
    /// Members in source order.
    pub members: Vec<ClassMember>,
}

/// A member of a class body.
#[derive(Debug, Clone)]
pub struct ClassMember {
    /// Span of the member.
    pub span: Span,
    /// Member name.
    pub key: PropName,
    /// What kind of member this is.
    pub kind: ClassMemberKind,
    /// Declared `static`.
    pub is_static: bool,
}

/// Kinds of class members.
#[derive(Debug, Clone)]
pub enum ClassMemberKind {
    /// `constructor(..) {..}`.
    Constructor(Box<Function>),
    /// Method / getter / setter.
    Method {
        /// Method flavor.
        kind: MethodKind,
        /// Underlying function.
        func: Box<Function>,
    },
    /// Field with optional initializer.
    Field(Option<Expr>),
}

/// Assignment target: identifier, member expression or destructuring
/// pattern.
#[derive(Debug, Clone)]
pub enum AssignTarget {
    /// `x = ..`
    Ident {
        /// Node id of the reference.
        id: NodeId,
        /// Span of the identifier.
        span: Span,
        /// Variable name.
        name: String,
    },
    /// `o.p = ..` / `o[e] = ..` — the latter is the paper's dynamic write.
    Member(Box<Expr>),
    /// `[a, b] = ..` / `{x} = ..`
    Pattern(Box<Pattern>),
}

/// Binding/destructuring pattern.
#[derive(Debug, Clone)]
pub struct Pattern {
    /// Unique node id.
    pub id: NodeId,
    /// Span of the pattern.
    pub span: Span,
    /// The pattern proper.
    pub kind: PatternKind,
}

/// Kinds of patterns.
#[derive(Debug, Clone)]
pub enum PatternKind {
    /// Simple identifier binding.
    Ident(String),
    /// Array pattern; `None` elements are holes.
    Array {
        /// Element patterns.
        elems: Vec<Option<Pattern>>,
        /// Trailing rest element.
        rest: Option<Box<Pattern>>,
    },
    /// Object pattern.
    Object {
        /// Destructured properties.
        props: Vec<ObjectPatProp>,
        /// Trailing rest element.
        rest: Option<Box<Pattern>>,
    },
    /// Pattern with a default: `x = e` inside a larger pattern.
    Assign {
        /// Inner pattern.
        pat: Box<Pattern>,
        /// Default value.
        default: Box<Expr>,
    },
}

/// One property of an object pattern.
#[derive(Debug, Clone)]
pub struct ObjectPatProp {
    /// Property name being read.
    pub key: PropName,
    /// Pattern the value is bound to.
    pub value: Pattern,
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnaryOp {
    /// `-`
    Neg,
    /// `+`
    Pos,
    /// `!`
    Not,
    /// `~`
    BitNot,
    /// `typeof`
    TypeOf,
    /// `void`
    Void,
    /// `delete`
    Delete,
}

impl UnaryOp {
    /// Source text of the operator.
    pub fn as_str(self) -> &'static str {
        match self {
            UnaryOp::Neg => "-",
            UnaryOp::Pos => "+",
            UnaryOp::Not => "!",
            UnaryOp::BitNot => "~",
            UnaryOp::TypeOf => "typeof",
            UnaryOp::Void => "void",
            UnaryOp::Delete => "delete",
        }
    }
}

/// `++` / `--`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpdateOp {
    /// `++`
    Inc,
    /// `--`
    Dec,
}

/// Binary operators (strict-evaluation ones).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinaryOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Rem,
    /// `**`
    Exp,
    /// `==`
    EqLoose,
    /// `!=`
    NeqLoose,
    /// `===`
    EqStrict,
    /// `!==`
    NeqStrict,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// `>>>`
    UShr,
    /// `&`
    BitAnd,
    /// `|`
    BitOr,
    /// `^`
    BitXor,
    /// `in`
    In,
    /// `instanceof`
    InstanceOf,
}

impl BinaryOp {
    /// Source text of the operator.
    pub fn as_str(self) -> &'static str {
        match self {
            BinaryOp::Add => "+",
            BinaryOp::Sub => "-",
            BinaryOp::Mul => "*",
            BinaryOp::Div => "/",
            BinaryOp::Rem => "%",
            BinaryOp::Exp => "**",
            BinaryOp::EqLoose => "==",
            BinaryOp::NeqLoose => "!=",
            BinaryOp::EqStrict => "===",
            BinaryOp::NeqStrict => "!==",
            BinaryOp::Lt => "<",
            BinaryOp::Le => "<=",
            BinaryOp::Gt => ">",
            BinaryOp::Ge => ">=",
            BinaryOp::Shl => "<<",
            BinaryOp::Shr => ">>",
            BinaryOp::UShr => ">>>",
            BinaryOp::BitAnd => "&",
            BinaryOp::BitOr => "|",
            BinaryOp::BitXor => "^",
            BinaryOp::In => "in",
            BinaryOp::InstanceOf => "instanceof",
        }
    }
}

/// Short-circuiting operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LogicalOp {
    /// `&&`
    And,
    /// `||`
    Or,
    /// `??`
    Nullish,
}

impl LogicalOp {
    /// Source text of the operator.
    pub fn as_str(self) -> &'static str {
        match self {
            LogicalOp::And => "&&",
            LogicalOp::Or => "||",
            LogicalOp::Nullish => "??",
        }
    }
}

/// Assignment operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AssignOp {
    /// `=`
    Assign,
    /// `+=`
    Add,
    /// `-=`
    Sub,
    /// `*=`
    Mul,
    /// `/=`
    Div,
    /// `%=`
    Rem,
    /// `**=`
    Exp,
    /// `<<=`
    Shl,
    /// `>>=`
    Shr,
    /// `>>>=`
    UShr,
    /// `&=`
    BitAnd,
    /// `|=`
    BitOr,
    /// `^=`
    BitXor,
    /// `&&=`
    And,
    /// `||=`
    Or,
    /// `??=`
    Nullish,
}

impl AssignOp {
    /// Source text of the operator.
    pub fn as_str(self) -> &'static str {
        match self {
            AssignOp::Assign => "=",
            AssignOp::Add => "+=",
            AssignOp::Sub => "-=",
            AssignOp::Mul => "*=",
            AssignOp::Div => "/=",
            AssignOp::Rem => "%=",
            AssignOp::Exp => "**=",
            AssignOp::Shl => "<<=",
            AssignOp::Shr => ">>=",
            AssignOp::UShr => ">>>=",
            AssignOp::BitAnd => "&=",
            AssignOp::BitOr => "|=",
            AssignOp::BitXor => "^=",
            AssignOp::And => "&&=",
            AssignOp::Or => "||=",
            AssignOp::Nullish => "??=",
        }
    }

    /// The underlying binary operator of a compound assignment, if any.
    pub fn binary_op(self) -> Option<BinaryOp> {
        Some(match self {
            AssignOp::Add => BinaryOp::Add,
            AssignOp::Sub => BinaryOp::Sub,
            AssignOp::Mul => BinaryOp::Mul,
            AssignOp::Div => BinaryOp::Div,
            AssignOp::Rem => BinaryOp::Rem,
            AssignOp::Exp => BinaryOp::Exp,
            AssignOp::Shl => BinaryOp::Shl,
            AssignOp::Shr => BinaryOp::Shr,
            AssignOp::UShr => BinaryOp::UShr,
            AssignOp::BitAnd => BinaryOp::BitAnd,
            AssignOp::BitOr => BinaryOp::BitOr,
            AssignOp::BitXor => BinaryOp::BitXor,
            AssignOp::Assign | AssignOp::And | AssignOp::Or | AssignOp::Nullish => return None,
        })
    }
}

impl Expr {
    /// Strips parentheses.
    pub fn unparen(&self) -> &Expr {
        match &self.kind {
            ExprKind::Paren(inner) => inner.unparen(),
            _ => self,
        }
    }

    /// If the expression is a string literal, returns its value.
    pub fn as_str_lit(&self) -> Option<&str> {
        match &self.unparen().kind {
            ExprKind::Str(s) => Some(s),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_gen_is_sequential() {
        let mut g = NodeIdGen::new();
        assert_eq!(g.fresh(), NodeId(0));
        assert_eq!(g.fresh(), NodeId(1));
        assert_eq!(g.count(), 2);
    }

    #[test]
    fn assign_op_binary_mapping() {
        assert_eq!(AssignOp::Add.binary_op(), Some(BinaryOp::Add));
        assert_eq!(AssignOp::Assign.binary_op(), None);
        assert_eq!(AssignOp::Or.binary_op(), None);
    }

    #[test]
    fn prop_name_static_name() {
        assert_eq!(PropName::Ident("x".into()).static_name().as_deref(), Some("x"));
        assert_eq!(PropName::Str("y z".into()).static_name().as_deref(), Some("y z"));
        assert_eq!(PropName::Num(3.0).static_name().as_deref(), Some("3"));
    }

    #[test]
    fn operator_strings_round_trip() {
        assert_eq!(BinaryOp::UShr.as_str(), ">>>");
        assert_eq!(LogicalOp::Nullish.as_str(), "??");
        assert_eq!(UnaryOp::TypeOf.as_str(), "typeof");
        assert_eq!(AssignOp::Nullish.as_str(), "??=");
    }
}
