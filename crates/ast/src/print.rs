//! AST-to-source printer.
//!
//! Produces valid JavaScript from an AST. Used by tests (print → reparse
//! fixpoint), by diagnostics and by the corpus tooling. The printer is
//! precedence-aware: it inserts parentheses whenever a child's precedence
//! is too low for its context, so the output always reparses to the same
//! structure.

use crate::ast::*;
use std::fmt::Write;

/// Prints a module as JavaScript source.
pub fn print_module(m: &Module) -> String {
    let mut p = Printer::new();
    for s in &m.body {
        p.stmt(s);
    }
    p.out
}

/// Prints a single statement as JavaScript source.
pub fn print_stmt(s: &Stmt) -> String {
    let mut p = Printer::new();
    p.stmt(s);
    p.out
}

/// Prints a single expression as JavaScript source.
pub fn print_expr(e: &Expr) -> String {
    let mut p = Printer::new();
    p.expr(e, 0);
    p.out
}

/// Escapes a string into a double-quoted JavaScript string literal.
pub fn quote_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\0' => out.push_str("\\0"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

struct Printer {
    out: String,
    indent: usize,
}

// Precedence levels, higher binds tighter. Mirrors the ECMAScript operator
// table closely enough for safe parenthesization.
const PREC_SEQ: u8 = 1;
const PREC_ASSIGN: u8 = 2;
const PREC_COND: u8 = 3;
const PREC_NULLISH: u8 = 4;
const PREC_OR: u8 = 5;
const PREC_AND: u8 = 6;
const PREC_BITOR: u8 = 7;
const PREC_BITXOR: u8 = 8;
const PREC_BITAND: u8 = 9;
const PREC_EQ: u8 = 10;
const PREC_REL: u8 = 11;
const PREC_SHIFT: u8 = 12;
const PREC_ADD: u8 = 13;
const PREC_MUL: u8 = 14;
const PREC_EXP: u8 = 15;
const PREC_UNARY: u8 = 16;
const PREC_POSTFIX: u8 = 17;
const PREC_NEW: u8 = 18;
const PREC_CALL: u8 = 19;
const PREC_PRIMARY: u8 = 20;

fn binary_prec(op: BinaryOp) -> u8 {
    use BinaryOp::*;
    match op {
        Exp => PREC_EXP,
        Mul | Div | Rem => PREC_MUL,
        Add | Sub => PREC_ADD,
        Shl | Shr | UShr => PREC_SHIFT,
        Lt | Le | Gt | Ge | In | InstanceOf => PREC_REL,
        EqLoose | NeqLoose | EqStrict | NeqStrict => PREC_EQ,
        BitAnd => PREC_BITAND,
        BitXor => PREC_BITXOR,
        BitOr => PREC_BITOR,
    }
}

fn logical_prec(op: LogicalOp) -> u8 {
    match op {
        LogicalOp::And => PREC_AND,
        LogicalOp::Or => PREC_OR,
        LogicalOp::Nullish => PREC_NULLISH,
    }
}

fn expr_prec(e: &Expr) -> u8 {
    match &e.kind {
        ExprKind::Seq(_) => PREC_SEQ,
        ExprKind::Assign { .. } => PREC_ASSIGN,
        ExprKind::Arrow(_) => PREC_ASSIGN,
        ExprKind::Cond { .. } => PREC_COND,
        ExprKind::Logical { op, .. } => logical_prec(*op),
        ExprKind::Binary { op, .. } => binary_prec(*op),
        ExprKind::Unary { .. } => PREC_UNARY,
        ExprKind::Update { prefix, .. } => {
            if *prefix {
                PREC_UNARY
            } else {
                PREC_POSTFIX
            }
        }
        ExprKind::New { .. } => PREC_NEW,
        ExprKind::Call { .. } => PREC_CALL,
        ExprKind::Member { .. } => PREC_CALL,
        ExprKind::Paren(_) => PREC_PRIMARY,
        _ => PREC_PRIMARY,
    }
}

impl Printer {
    fn new() -> Self {
        Printer {
            out: String::new(),
            indent: 0,
        }
    }

    fn nl(&mut self) {
        self.out.push('\n');
        for _ in 0..self.indent {
            self.out.push_str("  ");
        }
    }

    fn word(&mut self, s: &str) {
        self.out.push_str(s);
    }

    fn stmt(&mut self, s: &Stmt) {
        match &s.kind {
            StmtKind::Expr(e) => {
                // An expression statement must not start with `{`,
                // `function` or `class`.
                let needs_paren = starts_ambiguously(e);
                if needs_paren {
                    self.word("(");
                    self.expr(e, 0);
                    self.word(");");
                } else {
                    self.expr(e, PREC_SEQ);
                    self.word(";");
                }
                self.nl();
            }
            StmtKind::VarDecl(d) => {
                self.var_decl(d);
                self.word(";");
                self.nl();
            }
            StmtKind::FuncDecl(f) => {
                self.function(f, true);
                self.nl();
            }
            StmtKind::ClassDecl(c) => {
                self.class(c);
                self.nl();
            }
            StmtKind::Return(e) => {
                self.word("return");
                if let Some(e) = e {
                    self.word(" ");
                    self.expr(e, PREC_SEQ);
                }
                self.word(";");
                self.nl();
            }
            StmtKind::If { test, cons, alt } => {
                self.word("if (");
                self.expr(test, 0);
                self.word(") ");
                self.stmt_as_block(cons);
                if let Some(alt) = alt {
                    self.word(" else ");
                    if matches!(alt.kind, StmtKind::If { .. }) {
                        self.stmt(alt);
                    } else {
                        self.stmt_as_block(alt);
                        self.nl();
                    }
                } else {
                    self.nl();
                }
            }
            StmtKind::While { test, body } => {
                self.word("while (");
                self.expr(test, 0);
                self.word(") ");
                self.stmt_as_block(body);
                self.nl();
            }
            StmtKind::DoWhile { body, test } => {
                self.word("do ");
                self.stmt_as_block(body);
                self.word(" while (");
                self.expr(test, 0);
                self.word(");");
                self.nl();
            }
            StmtKind::For {
                init,
                test,
                update,
                body,
            } => {
                self.word("for (");
                match init {
                    Some(ForInit::VarDecl(d)) => self.var_decl(d),
                    Some(ForInit::Expr(e)) => self.expr(e, 0),
                    None => {}
                }
                self.word("; ");
                if let Some(t) = test {
                    self.expr(t, 0);
                }
                self.word("; ");
                if let Some(u) = update {
                    self.expr(u, 0);
                }
                self.word(") ");
                self.stmt_as_block(body);
                self.nl();
            }
            StmtKind::ForIn { head, obj, body } => {
                self.word("for (");
                self.for_head(head);
                self.word(" in ");
                self.expr(obj, PREC_SEQ);
                self.word(") ");
                self.stmt_as_block(body);
                self.nl();
            }
            StmtKind::ForOf { head, iter, body } => {
                self.word("for (");
                self.for_head(head);
                self.word(" of ");
                self.expr(iter, PREC_ASSIGN);
                self.word(") ");
                self.stmt_as_block(body);
                self.nl();
            }
            StmtKind::Block(body) => {
                self.block(body);
                self.nl();
            }
            StmtKind::Empty => {
                self.word(";");
                self.nl();
            }
            StmtKind::Break(label) => {
                self.word("break");
                if let Some(l) = label {
                    self.word(" ");
                    self.word(l);
                }
                self.word(";");
                self.nl();
            }
            StmtKind::Continue(label) => {
                self.word("continue");
                if let Some(l) = label {
                    self.word(" ");
                    self.word(l);
                }
                self.word(";");
                self.nl();
            }
            StmtKind::Labeled { label, body } => {
                self.word(label);
                self.word(": ");
                self.stmt(body);
            }
            StmtKind::Switch { disc, cases } => {
                self.word("switch (");
                self.expr(disc, 0);
                self.word(") {");
                self.indent += 1;
                for c in cases {
                    self.nl();
                    match &c.test {
                        Some(t) => {
                            self.word("case ");
                            self.expr(t, PREC_SEQ);
                            self.word(":");
                        }
                        None => self.word("default:"),
                    }
                    self.indent += 1;
                    for s in &c.body {
                        self.nl();
                        self.stmt_inline(s);
                    }
                    self.indent -= 1;
                }
                self.indent -= 1;
                self.nl();
                self.word("}");
                self.nl();
            }
            StmtKind::Throw(e) => {
                self.word("throw ");
                self.expr(e, PREC_SEQ);
                self.word(";");
                self.nl();
            }
            StmtKind::Try {
                block,
                catch,
                finally,
            } => {
                self.word("try ");
                self.block(block);
                if let Some(c) = catch {
                    self.word(" catch ");
                    if let Some(p) = &c.param {
                        self.word("(");
                        self.pattern(p);
                        self.word(") ");
                    }
                    self.block(&c.body);
                }
                if let Some(f) = finally {
                    self.word(" finally ");
                    self.block(f);
                }
                self.nl();
            }
            StmtKind::Debugger => {
                self.word("debugger;");
                self.nl();
            }
        }
    }

    /// Prints a statement without a trailing newline adjustment (used inside
    /// switch arms where `stmt` already positions us).
    fn stmt_inline(&mut self, s: &Stmt) {
        // Reuse stmt, but strip the trailing newline it appends.
        let before = self.out.len();
        self.stmt(s);
        // Remove trailing indentation-only newline to keep switch arms tight.
        while self.out.len() > before && self.out.ends_with([' ', '\n']) {
            self.out.pop();
        }
    }

    fn for_head(&mut self, head: &ForHead) {
        match head {
            ForHead::VarDecl { kind, pat } => {
                self.word(&kind.to_string());
                self.word(" ");
                self.pattern(pat);
            }
            ForHead::Target(e) => self.expr(e, PREC_CALL),
        }
    }

    fn stmt_as_block(&mut self, s: &Stmt) {
        match &s.kind {
            StmtKind::Block(body) => self.block(body),
            _ => {
                self.word("{");
                self.indent += 1;
                self.nl();
                self.stmt_inline(s);
                self.indent -= 1;
                self.nl();
                self.word("}");
            }
        }
    }

    fn block(&mut self, body: &[Stmt]) {
        if body.is_empty() {
            self.word("{}");
            return;
        }
        self.word("{");
        self.indent += 1;
        self.nl();
        for (i, s) in body.iter().enumerate() {
            self.stmt_inline(s);
            if i + 1 < body.len() {
                self.nl();
            }
        }
        self.indent -= 1;
        self.nl();
        self.word("}");
    }

    fn var_decl(&mut self, d: &VarDecl) {
        self.word(&d.kind.to_string());
        self.word(" ");
        for (i, decl) in d.decls.iter().enumerate() {
            if i > 0 {
                self.word(", ");
            }
            self.pattern(&decl.name);
            if let Some(init) = &decl.init {
                self.word(" = ");
                self.expr(init, PREC_ASSIGN);
            }
        }
    }

    fn function(&mut self, f: &Function, _is_decl: bool) {
        if f.is_async {
            self.word("async ");
        }
        self.word("function");
        if f.is_generator {
            self.word("*");
        }
        if let Some(name) = &f.name {
            self.word(" ");
            self.word(name);
        }
        self.params(f);
        self.word(" ");
        match &f.body {
            FuncBody::Block(body) => self.block(body),
            FuncBody::Expr(e) => {
                // Only arrows have expression bodies; a `function` printed
                // here must have a block, so wrap it.
                self.word("{ return ");
                self.expr(e, PREC_SEQ);
                self.word("; }");
            }
        }
    }

    fn arrow(&mut self, f: &Function) {
        if f.is_async {
            self.word("async ");
        }
        self.params(f);
        self.word(" => ");
        match &f.body {
            FuncBody::Block(body) => self.block(body),
            FuncBody::Expr(e) => {
                // An object literal body needs parens.
                if starts_with_brace(e) {
                    self.word("(");
                    self.expr(e, PREC_ASSIGN);
                    self.word(")");
                } else {
                    self.expr(e, PREC_ASSIGN);
                }
            }
        }
    }

    fn params(&mut self, f: &Function) {
        self.word("(");
        let mut first = true;
        for p in &f.params {
            if !first {
                self.word(", ");
            }
            first = false;
            self.pattern(&p.pat);
            if let Some(d) = &p.default {
                self.word(" = ");
                self.expr(d, PREC_ASSIGN);
            }
        }
        if let Some(r) = &f.rest {
            if !first {
                self.word(", ");
            }
            self.word("...");
            self.pattern(r);
        }
        self.word(")");
    }

    fn class(&mut self, c: &Class) {
        self.word("class");
        if let Some(n) = &c.name {
            self.word(" ");
            self.word(n);
        }
        if let Some(s) = &c.super_class {
            self.word(" extends ");
            self.expr(s, PREC_CALL);
        }
        self.word(" {");
        self.indent += 1;
        for m in &c.members {
            self.nl();
            if m.is_static {
                self.word("static ");
            }
            match &m.kind {
                ClassMemberKind::Constructor(f) => {
                    self.word("constructor");
                    self.params(f);
                    self.word(" ");
                    if let FuncBody::Block(b) = &f.body {
                        self.block(b);
                    }
                }
                ClassMemberKind::Method { kind, func } => {
                    match kind {
                        MethodKind::Get => self.word("get "),
                        MethodKind::Set => self.word("set "),
                        MethodKind::Method => {}
                    }
                    self.prop_name(&m.key);
                    self.params(func);
                    self.word(" ");
                    if let FuncBody::Block(b) = &func.body {
                        self.block(b);
                    }
                }
                ClassMemberKind::Field(init) => {
                    self.prop_name(&m.key);
                    if let Some(e) = init {
                        self.word(" = ");
                        self.expr(e, PREC_ASSIGN);
                    }
                    self.word(";");
                }
            }
        }
        self.indent -= 1;
        self.nl();
        self.word("}");
    }

    fn prop_name(&mut self, p: &PropName) {
        match p {
            PropName::Ident(s) => self.word(s),
            PropName::Str(s) => self.word(&quote_str(s)),
            PropName::Num(n) => self.word(&crate::num_to_prop_name(*n)),
            PropName::Computed(e) => {
                self.word("[");
                self.expr(e, PREC_ASSIGN);
                self.word("]");
            }
        }
    }

    fn pattern(&mut self, p: &Pattern) {
        match &p.kind {
            PatternKind::Ident(s) => self.word(s),
            PatternKind::Array { elems, rest } => {
                self.word("[");
                for (i, el) in elems.iter().enumerate() {
                    if i > 0 {
                        self.word(", ");
                    }
                    if let Some(el) = el {
                        self.pattern(el);
                    }
                }
                if let Some(r) = rest {
                    if !elems.is_empty() {
                        self.word(", ");
                    }
                    self.word("...");
                    self.pattern(r);
                }
                self.word("]");
            }
            PatternKind::Object { props, rest } => {
                self.word("{");
                for (i, pr) in props.iter().enumerate() {
                    if i > 0 {
                        self.word(", ");
                    }
                    self.prop_name(&pr.key);
                    self.word(": ");
                    self.pattern(&pr.value);
                }
                if let Some(r) = rest {
                    if !props.is_empty() {
                        self.word(", ");
                    }
                    self.word("...");
                    self.pattern(r);
                }
                self.word("}");
            }
            PatternKind::Assign { pat, default } => {
                self.pattern(pat);
                self.word(" = ");
                self.expr(default, PREC_ASSIGN);
            }
        }
    }

    /// Prints `e`, parenthesizing it if its precedence is below `min_prec`.
    fn expr(&mut self, e: &Expr, min_prec: u8) {
        let prec = expr_prec(e);
        let needs_paren = prec < min_prec;
        if needs_paren {
            self.word("(");
        }
        self.expr_inner(e);
        if needs_paren {
            self.word(")");
        }
    }

    fn expr_inner(&mut self, e: &Expr) {
        match &e.kind {
            ExprKind::Num(n) => {
                if *n < 0.0 || (n.fract() != 0.0) {
                    let _ = write!(self.out, "{}", n);
                } else if n.is_finite() && *n < 1e21 {
                    let _ = write!(self.out, "{}", *n as u64);
                } else {
                    let _ = write!(self.out, "{}", n);
                }
            }
            ExprKind::Str(s) => self.word(&quote_str(s)),
            ExprKind::Bool(b) => self.word(if *b { "true" } else { "false" }),
            ExprKind::Null => self.word("null"),
            ExprKind::Template { quasis, exprs } => {
                self.word("`");
                for (i, q) in quasis.iter().enumerate() {
                    for c in q.chars() {
                        match c {
                            '`' => self.word("\\`"),
                            '\\' => self.word("\\\\"),
                            '$' => self.word("\\$"),
                            c => self.out.push(c),
                        }
                    }
                    if i < exprs.len() {
                        self.word("${");
                        self.expr(&exprs[i], 0);
                        self.word("}");
                    }
                }
                self.word("`");
            }
            ExprKind::Regex { pattern, flags } => {
                self.word("/");
                self.word(pattern);
                self.word("/");
                self.word(flags);
            }
            ExprKind::Ident(s) => self.word(s),
            ExprKind::This => self.word("this"),
            ExprKind::Array(elems) => {
                self.word("[");
                for (i, el) in elems.iter().enumerate() {
                    if i > 0 {
                        self.word(", ");
                    }
                    if let Some(el) = el {
                        if el.spread {
                            self.word("...");
                        }
                        self.expr(&el.expr, PREC_ASSIGN);
                    }
                }
                self.word("]");
            }
            ExprKind::Object(props) => {
                if props.is_empty() {
                    self.word("{}");
                    return;
                }
                self.word("{ ");
                for (i, p) in props.iter().enumerate() {
                    if i > 0 {
                        self.word(", ");
                    }
                    match p {
                        Property::KeyValue { key, value } => {
                            self.prop_name(key);
                            self.word(": ");
                            self.expr(value, PREC_ASSIGN);
                        }
                        Property::Method { key, kind, func } => {
                            match kind {
                                MethodKind::Get => self.word("get "),
                                MethodKind::Set => self.word("set "),
                                MethodKind::Method => {}
                            }
                            self.prop_name(key);
                            self.params(func);
                            self.word(" ");
                            if let FuncBody::Block(b) = &func.body {
                                self.block(b);
                            }
                        }
                        Property::Spread(e) => {
                            self.word("...");
                            self.expr(e, PREC_ASSIGN);
                        }
                    }
                }
                self.word(" }");
            }
            ExprKind::Function(f) => self.function(f, false),
            ExprKind::Arrow(f) => self.arrow(f),
            ExprKind::Class(c) => self.class(c),
            ExprKind::Unary { op, expr } => {
                self.word(op.as_str());
                match op {
                    UnaryOp::TypeOf | UnaryOp::Void | UnaryOp::Delete => self.word(" "),
                    // Avoid `--x` when printing `-(-x)`.
                    UnaryOp::Neg | UnaryOp::Pos => {
                        if matches!(
                            expr.kind,
                            ExprKind::Unary { .. } | ExprKind::Update { .. }
                        ) {
                            self.word(" ");
                        } else if let ExprKind::Num(n) = expr.kind {
                            if n < 0.0 {
                                self.word(" ");
                            }
                        }
                    }
                    _ => {}
                }
                self.expr(expr, PREC_UNARY);
            }
            ExprKind::Update { op, prefix, expr } => {
                let op_str = match op {
                    UpdateOp::Inc => "++",
                    UpdateOp::Dec => "--",
                };
                if *prefix {
                    self.word(op_str);
                    self.expr(expr, PREC_UNARY);
                } else {
                    self.expr(expr, PREC_POSTFIX);
                    self.word(op_str);
                }
            }
            ExprKind::Binary { op, left, right } => {
                let prec = binary_prec(*op);
                // `**` is right-associative; everything else left.
                if *op == BinaryOp::Exp {
                    self.expr(left, prec + 1);
                    self.word(" ** ");
                    self.expr(right, prec);
                } else {
                    self.expr(left, prec);
                    self.word(" ");
                    self.word(op.as_str());
                    self.word(" ");
                    self.expr(right, prec + 1);
                }
            }
            ExprKind::Logical { op, left, right } => {
                let prec = logical_prec(*op);
                // `??` must not mix unparenthesized with `&&`/`||`.
                let left_min = if *op == LogicalOp::Nullish {
                    PREC_AND + 1
                } else {
                    prec
                };
                self.expr(left, left_min);
                self.word(" ");
                self.word(op.as_str());
                self.word(" ");
                self.expr(
                    right,
                    if *op == LogicalOp::Nullish {
                        PREC_AND + 1
                    } else {
                        prec + 1
                    },
                );
            }
            ExprKind::Assign { op, target, value } => {
                match target {
                    AssignTarget::Ident { name, .. } => self.word(name),
                    AssignTarget::Member(m) => self.expr(m, PREC_CALL),
                    AssignTarget::Pattern(p) => self.pattern(p),
                }
                self.word(" ");
                self.word(op.as_str());
                self.word(" ");
                self.expr(value, PREC_ASSIGN);
            }
            ExprKind::Cond { test, cons, alt } => {
                self.expr(test, PREC_COND + 1);
                self.word(" ? ");
                self.expr(cons, PREC_ASSIGN);
                self.word(" : ");
                self.expr(alt, PREC_ASSIGN);
            }
            ExprKind::Call {
                callee,
                args,
                optional,
            } => {
                self.expr(callee, PREC_CALL);
                if *optional {
                    self.word("?.");
                }
                self.args(args);
            }
            ExprKind::New { callee, args } => {
                self.word("new ");
                // The callee of `new` must not itself contain a call.
                self.expr(callee, PREC_NEW + 1);
                self.args(args);
            }
            ExprKind::Member {
                obj,
                prop,
                optional,
            } => {
                // A `new X()` base is fine; a numeric literal base needs
                // parens for `.`; keep it simple and require PREC_CALL.
                let needs_paren =
                    matches!(obj.kind, ExprKind::Num(_)) || expr_prec(obj) < PREC_CALL;
                if needs_paren {
                    self.word("(");
                    self.expr(obj, 0);
                    self.word(")");
                } else {
                    self.expr_inner(obj);
                }
                match prop {
                    MemberProp::Static(name) => {
                        if *optional {
                            self.word("?.");
                        } else {
                            self.word(".");
                        }
                        self.word(name);
                    }
                    MemberProp::Computed(e) => {
                        if *optional {
                            self.word("?.");
                        }
                        self.word("[");
                        self.expr(e, 0);
                        self.word("]");
                    }
                }
            }
            ExprKind::Seq(exprs) => {
                for (i, x) in exprs.iter().enumerate() {
                    if i > 0 {
                        self.word(", ");
                    }
                    self.expr(x, PREC_ASSIGN);
                }
            }
            ExprKind::Paren(inner) => {
                self.word("(");
                self.expr(inner, 0);
                self.word(")");
            }
        }
    }

    fn args(&mut self, args: &[ExprOrSpread]) {
        self.word("(");
        for (i, a) in args.iter().enumerate() {
            if i > 0 {
                self.word(", ");
            }
            if a.spread {
                self.word("...");
            }
            self.expr(&a.expr, PREC_ASSIGN);
        }
        self.word(")");
    }
}

/// Whether an expression statement starting with this expression would be
/// misparsed (object literal as block, function expression as declaration).
fn starts_ambiguously(e: &Expr) -> bool {
    match &e.kind {
        ExprKind::Object(_) | ExprKind::Function(_) | ExprKind::Class(_) => true,
        ExprKind::Assign { target, .. } => match target {
            AssignTarget::Member(m) => starts_ambiguously(m),
            AssignTarget::Pattern(p) => matches!(p.kind, PatternKind::Object { .. }),
            AssignTarget::Ident { .. } => false,
        },
        ExprKind::Binary { left, .. } | ExprKind::Logical { left, .. } => starts_ambiguously(left),
        ExprKind::Cond { test, .. } => starts_ambiguously(test),
        ExprKind::Member { obj, .. } => starts_ambiguously(obj),
        ExprKind::Call { callee, .. } => starts_ambiguously(callee),
        ExprKind::Seq(exprs) => exprs.first().is_some_and(starts_ambiguously),
        ExprKind::Update {
            prefix: false,
            expr,
            ..
        } => starts_ambiguously(expr),
        _ => false,
    }
}

fn starts_with_brace(e: &Expr) -> bool {
    match &e.kind {
        ExprKind::Object(_) => true,
        ExprKind::Seq(exprs) => exprs.first().is_some_and(starts_with_brace),
        ExprKind::Binary { left, .. } | ExprKind::Logical { left, .. } => starts_with_brace(left),
        ExprKind::Member { obj, .. } => starts_with_brace(obj),
        ExprKind::Call { callee, .. } => starts_with_brace(callee),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FileId, NodeIdGen, Span};

    fn sp() -> Span {
        Span::dummy(FileId(0))
    }

    fn expr(g: &mut NodeIdGen, kind: ExprKind) -> Expr {
        Expr {
            id: g.fresh(),
            span: sp(),
            kind,
        }
    }

    #[test]
    fn quote_str_escapes() {
        assert_eq!(quote_str("a\"b"), "\"a\\\"b\"");
        assert_eq!(quote_str("a\nb"), "\"a\\nb\"");
        assert_eq!(quote_str("back\\slash"), "\"back\\\\slash\"");
        assert_eq!(quote_str("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn print_binary_precedence() {
        let mut g = NodeIdGen::new();
        // (1 + 2) * 3
        let one = expr(&mut g, ExprKind::Num(1.0));
        let two = expr(&mut g, ExprKind::Num(2.0));
        let three = expr(&mut g, ExprKind::Num(3.0));
        let sum = expr(
            &mut g,
            ExprKind::Binary {
                op: BinaryOp::Add,
                left: Box::new(one),
                right: Box::new(two),
            },
        );
        let prod = expr(
            &mut g,
            ExprKind::Binary {
                op: BinaryOp::Mul,
                left: Box::new(sum),
                right: Box::new(three),
            },
        );
        assert_eq!(print_expr(&prod), "(1 + 2) * 3");
    }

    #[test]
    fn print_member_of_call() {
        let mut g = NodeIdGen::new();
        let f = expr(&mut g, ExprKind::Ident("f".into()));
        let call = expr(
            &mut g,
            ExprKind::Call {
                callee: Box::new(f),
                args: vec![],
                optional: false,
            },
        );
        let member = expr(
            &mut g,
            ExprKind::Member {
                obj: Box::new(call),
                prop: MemberProp::Static("x".into()),
                optional: false,
            },
        );
        assert_eq!(print_expr(&member), "f().x");
    }

    #[test]
    fn print_object_statement_parenthesized() {
        let mut g = NodeIdGen::new();
        let obj = expr(&mut g, ExprKind::Object(vec![]));
        let s = Stmt {
            id: g.fresh(),
            span: sp(),
            kind: StmtKind::Expr(obj),
        };
        assert!(print_stmt(&s).starts_with("({}"));
    }

    #[test]
    fn print_dynamic_member() {
        let mut g = NodeIdGen::new();
        let o = expr(&mut g, ExprKind::Ident("o".into()));
        let k = expr(&mut g, ExprKind::Ident("k".into()));
        let m = expr(
            &mut g,
            ExprKind::Member {
                obj: Box::new(o),
                prop: MemberProp::Computed(Box::new(k)),
                optional: false,
            },
        );
        assert_eq!(print_expr(&m), "o[k]");
    }

    #[test]
    fn print_negative_number_member_parenthesized() {
        let mut g = NodeIdGen::new();
        let one = expr(&mut g, ExprKind::Num(1.0));
        let m = expr(
            &mut g,
            ExprKind::Member {
                obj: Box::new(one),
                prop: MemberProp::Static("toString".into()),
                optional: false,
            },
        );
        assert_eq!(print_expr(&m), "(1).toString");
    }
}
