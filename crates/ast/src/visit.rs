//! Read-only AST visitors.
//!
//! [`Visit`] provides one overridable method per node category, each with a
//! default implementation that recurses via the free `walk_*` functions.
//! Overriding a method and *not* calling the corresponding `walk_*` prunes
//! the traversal below that node.

use crate::ast::*;

/// A read-only visitor over the AST.
///
/// Implementors override the hooks they care about; unimplemented hooks
/// recurse into children.
pub trait Visit: Sized {
    /// Visits a module.
    fn visit_module(&mut self, m: &Module) {
        walk_module(self, m);
    }
    /// Visits a statement.
    fn visit_stmt(&mut self, s: &Stmt) {
        walk_stmt(self, s);
    }
    /// Visits an expression.
    fn visit_expr(&mut self, e: &Expr) {
        walk_expr(self, e);
    }
    /// Visits a function (declaration, expression, arrow, method).
    fn visit_function(&mut self, f: &Function) {
        walk_function(self, f);
    }
    /// Visits a class.
    fn visit_class(&mut self, c: &Class) {
        walk_class(self, c);
    }
    /// Visits a pattern.
    fn visit_pattern(&mut self, p: &Pattern) {
        walk_pattern(self, p);
    }
    /// Visits a variable declaration list.
    fn visit_var_decl(&mut self, d: &VarDecl) {
        walk_var_decl(self, d);
    }
    /// Visits a property name (computed keys contain expressions).
    fn visit_prop_name(&mut self, p: &PropName) {
        walk_prop_name(self, p);
    }
}

/// Recurses into a module's statements.
pub fn walk_module<V: Visit>(v: &mut V, m: &Module) {
    for s in &m.body {
        v.visit_stmt(s);
    }
}

/// Recurses into a statement's children.
pub fn walk_stmt<V: Visit>(v: &mut V, s: &Stmt) {
    match &s.kind {
        StmtKind::Expr(e) => v.visit_expr(e),
        StmtKind::VarDecl(d) => v.visit_var_decl(d),
        StmtKind::FuncDecl(f) => v.visit_function(f),
        StmtKind::ClassDecl(c) => v.visit_class(c),
        StmtKind::Return(e) => {
            if let Some(e) = e {
                v.visit_expr(e);
            }
        }
        StmtKind::If { test, cons, alt } => {
            v.visit_expr(test);
            v.visit_stmt(cons);
            if let Some(alt) = alt {
                v.visit_stmt(alt);
            }
        }
        StmtKind::While { test, body } => {
            v.visit_expr(test);
            v.visit_stmt(body);
        }
        StmtKind::DoWhile { body, test } => {
            v.visit_stmt(body);
            v.visit_expr(test);
        }
        StmtKind::For {
            init,
            test,
            update,
            body,
        } => {
            match init {
                Some(ForInit::VarDecl(d)) => v.visit_var_decl(d),
                Some(ForInit::Expr(e)) => v.visit_expr(e),
                None => {}
            }
            if let Some(t) = test {
                v.visit_expr(t);
            }
            if let Some(u) = update {
                v.visit_expr(u);
            }
            v.visit_stmt(body);
        }
        StmtKind::ForIn { head, obj, body } => {
            walk_for_head(v, head);
            v.visit_expr(obj);
            v.visit_stmt(body);
        }
        StmtKind::ForOf { head, iter, body } => {
            walk_for_head(v, head);
            v.visit_expr(iter);
            v.visit_stmt(body);
        }
        StmtKind::Block(body) => {
            for s in body {
                v.visit_stmt(s);
            }
        }
        StmtKind::Empty | StmtKind::Break(_) | StmtKind::Continue(_) | StmtKind::Debugger => {}
        StmtKind::Labeled { body, .. } => v.visit_stmt(body),
        StmtKind::Switch { disc, cases } => {
            v.visit_expr(disc);
            for c in cases {
                if let Some(t) = &c.test {
                    v.visit_expr(t);
                }
                for s in &c.body {
                    v.visit_stmt(s);
                }
            }
        }
        StmtKind::Throw(e) => v.visit_expr(e),
        StmtKind::Try {
            block,
            catch,
            finally,
        } => {
            for s in block {
                v.visit_stmt(s);
            }
            if let Some(c) = catch {
                if let Some(p) = &c.param {
                    v.visit_pattern(p);
                }
                for s in &c.body {
                    v.visit_stmt(s);
                }
            }
            if let Some(f) = finally {
                for s in f {
                    v.visit_stmt(s);
                }
            }
        }
    }
}

fn walk_for_head<V: Visit>(v: &mut V, head: &ForHead) {
    match head {
        ForHead::VarDecl { pat, .. } => v.visit_pattern(pat),
        ForHead::Target(e) => v.visit_expr(e),
    }
}

/// Recurses into an expression's children.
pub fn walk_expr<V: Visit>(v: &mut V, e: &Expr) {
    match &e.kind {
        ExprKind::Num(_)
        | ExprKind::Str(_)
        | ExprKind::Bool(_)
        | ExprKind::Null
        | ExprKind::Regex { .. }
        | ExprKind::Ident(_)
        | ExprKind::This => {}
        ExprKind::Template { exprs, .. } => {
            for x in exprs {
                v.visit_expr(x);
            }
        }
        ExprKind::Array(elems) => {
            for el in elems.iter().flatten() {
                v.visit_expr(&el.expr);
            }
        }
        ExprKind::Object(props) => {
            for p in props {
                match p {
                    Property::KeyValue { key, value } => {
                        v.visit_prop_name(key);
                        v.visit_expr(value);
                    }
                    Property::Method { key, func, .. } => {
                        v.visit_prop_name(key);
                        v.visit_function(func);
                    }
                    Property::Spread(e) => v.visit_expr(e),
                }
            }
        }
        ExprKind::Function(f) | ExprKind::Arrow(f) => v.visit_function(f),
        ExprKind::Class(c) => v.visit_class(c),
        ExprKind::Unary { expr, .. } => v.visit_expr(expr),
        ExprKind::Update { expr, .. } => v.visit_expr(expr),
        ExprKind::Binary { left, right, .. } | ExprKind::Logical { left, right, .. } => {
            v.visit_expr(left);
            v.visit_expr(right);
        }
        ExprKind::Assign { target, value, .. } => {
            match target {
                AssignTarget::Ident { .. } => {}
                AssignTarget::Member(m) => v.visit_expr(m),
                AssignTarget::Pattern(p) => v.visit_pattern(p),
            }
            v.visit_expr(value);
        }
        ExprKind::Cond { test, cons, alt } => {
            v.visit_expr(test);
            v.visit_expr(cons);
            v.visit_expr(alt);
        }
        ExprKind::Call { callee, args, .. } => {
            v.visit_expr(callee);
            for a in args {
                v.visit_expr(&a.expr);
            }
        }
        ExprKind::New { callee, args } => {
            v.visit_expr(callee);
            for a in args {
                v.visit_expr(&a.expr);
            }
        }
        ExprKind::Member { obj, prop, .. } => {
            v.visit_expr(obj);
            if let MemberProp::Computed(p) = prop {
                v.visit_expr(p);
            }
        }
        ExprKind::Seq(exprs) => {
            for x in exprs {
                v.visit_expr(x);
            }
        }
        ExprKind::Paren(inner) => v.visit_expr(inner),
    }
}

/// Recurses into a function's parameters and body.
pub fn walk_function<V: Visit>(v: &mut V, f: &Function) {
    for p in &f.params {
        v.visit_pattern(&p.pat);
        if let Some(d) = &p.default {
            v.visit_expr(d);
        }
    }
    if let Some(r) = &f.rest {
        v.visit_pattern(r);
    }
    match &f.body {
        FuncBody::Block(stmts) => {
            for s in stmts {
                v.visit_stmt(s);
            }
        }
        FuncBody::Expr(e) => v.visit_expr(e),
    }
}

/// Recurses into a class's superclass and members.
pub fn walk_class<V: Visit>(v: &mut V, c: &Class) {
    if let Some(s) = &c.super_class {
        v.visit_expr(s);
    }
    for m in &c.members {
        v.visit_prop_name(&m.key);
        match &m.kind {
            ClassMemberKind::Constructor(f) => v.visit_function(f),
            ClassMemberKind::Method { func, .. } => v.visit_function(func),
            ClassMemberKind::Field(init) => {
                if let Some(e) = init {
                    v.visit_expr(e);
                }
            }
        }
    }
}

/// Recurses into a pattern's children.
pub fn walk_pattern<V: Visit>(v: &mut V, p: &Pattern) {
    match &p.kind {
        PatternKind::Ident(_) => {}
        PatternKind::Array { elems, rest } => {
            for el in elems.iter().flatten() {
                v.visit_pattern(el);
            }
            if let Some(r) = rest {
                v.visit_pattern(r);
            }
        }
        PatternKind::Object { props, rest } => {
            for pr in props {
                v.visit_prop_name(&pr.key);
                v.visit_pattern(&pr.value);
            }
            if let Some(r) = rest {
                v.visit_pattern(r);
            }
        }
        PatternKind::Assign { pat, default } => {
            v.visit_pattern(pat);
            v.visit_expr(default);
        }
    }
}

/// Recurses into a declaration list's declarators.
pub fn walk_var_decl<V: Visit>(v: &mut V, d: &VarDecl) {
    for decl in &d.decls {
        v.visit_pattern(&decl.name);
        if let Some(init) = &decl.init {
            v.visit_expr(init);
        }
    }
}

/// Recurses into a computed property name.
pub fn walk_prop_name<V: Visit>(v: &mut V, p: &PropName) {
    if let PropName::Computed(e) = p {
        v.visit_expr(e);
    }
}

/// Collects the [`NodeId`]s and spans of every function definition in a
/// module (including methods, arrows and class members), in traversal
/// order. This is the definition universe used by the coverage statistics
/// in §5 of the paper.
#[derive(Debug, Default)]
pub struct FunctionCollector {
    /// Collected `(id, span, name)` triples.
    pub functions: Vec<(NodeId, crate::Span, Option<String>)>,
}

impl Visit for FunctionCollector {
    fn visit_function(&mut self, f: &Function) {
        self.functions.push((f.id, f.span, f.name.clone()));
        walk_function(self, f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{NodeIdGen, Span};

    fn dummy_span() -> Span {
        Span::dummy(crate::FileId(0))
    }

    fn ident(g: &mut NodeIdGen, name: &str) -> Expr {
        Expr {
            id: g.fresh(),
            span: dummy_span(),
            kind: ExprKind::Ident(name.into()),
        }
    }

    #[test]
    fn function_collector_finds_nested_functions() {
        let mut g = NodeIdGen::new();
        // function outer() { var f = function inner() {}; }
        let inner = Function {
            id: g.fresh(),
            span: dummy_span(),
            name: Some("inner".into()),
            params: vec![],
            rest: None,
            body: FuncBody::Block(vec![]),
            is_arrow: false,
            is_async: false,
            is_generator: false,
        };
        let decl = Stmt {
            id: g.fresh(),
            span: dummy_span(),
            kind: StmtKind::VarDecl(VarDecl {
                kind: VarKind::Var,
                decls: vec![VarDeclarator {
                    span: dummy_span(),
                    name: Pattern {
                        id: g.fresh(),
                        span: dummy_span(),
                        kind: PatternKind::Ident("f".into()),
                    },
                    init: Some(Expr {
                        id: g.fresh(),
                        span: dummy_span(),
                        kind: ExprKind::Function(Box::new(inner)),
                    }),
                }],
            }),
        };
        let outer = Function {
            id: g.fresh(),
            span: dummy_span(),
            name: Some("outer".into()),
            params: vec![],
            rest: None,
            body: FuncBody::Block(vec![decl]),
            is_arrow: false,
            is_async: false,
            is_generator: false,
        };
        let module = Module {
            id: g.fresh(),
            span: dummy_span(),
            body: vec![Stmt {
                id: g.fresh(),
                span: dummy_span(),
                kind: StmtKind::FuncDecl(Box::new(outer)),
            }],
        };
        let mut c = FunctionCollector::default();
        c.visit_module(&module);
        let names: Vec<_> = c.functions.iter().map(|(_, _, n)| n.clone()).collect();
        assert_eq!(
            names,
            vec![Some("outer".to_string()), Some("inner".to_string())]
        );
    }

    #[test]
    fn walk_expr_visits_call_args() {
        let mut g = NodeIdGen::new();
        let callee = ident(&mut g, "f");
        let arg = ident(&mut g, "a");
        let call = Expr {
            id: g.fresh(),
            span: dummy_span(),
            kind: ExprKind::Call {
                callee: Box::new(callee),
                args: vec![ExprOrSpread {
                    spread: false,
                    expr: arg,
                }],
                optional: false,
            },
        };
        struct IdentCounter(usize);
        impl Visit for IdentCounter {
            fn visit_expr(&mut self, e: &Expr) {
                if matches!(e.kind, ExprKind::Ident(_)) {
                    self.0 += 1;
                }
                walk_expr(self, e);
            }
        }
        let mut c = IdentCounter(0);
        c.visit_expr(&call);
        assert_eq!(c.0, 2);
    }
}
