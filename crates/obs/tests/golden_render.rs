//! Golden test pinning the exact `render_text` output for a fixed report,
//! so `aji-report`'s formatting cannot drift silently.

use aji_obs::{render_text, CounterRecord, HistogramRecord, ObsReport, RenderOptions, SpanRecord};

fn fixture() -> ObsReport {
    ObsReport {
        spans: vec![
            SpanRecord {
                path: "pipeline".into(),
                count: 1,
                total_ns: 2_000_000,
            },
            SpanRecord {
                path: "pipeline/approx-interp".into(),
                count: 1,
                total_ns: 1_000_000,
            },
            SpanRecord {
                path: "pipeline/baseline-pta".into(),
                count: 1,
                total_ns: 600_000,
            },
            SpanRecord {
                path: "pipeline/baseline-pta/solve".into(),
                count: 2,
                total_ns: 150_000,
            },
        ],
        counters: vec![
            CounterRecord {
                name: "approx.read_hints".into(),
                value: 3,
            },
            CounterRecord {
                name: "interp.steps".into(),
                value: 1_234_567,
            },
            CounterRecord {
                name: "pta.propagations".into(),
                value: 42,
            },
        ],
        histograms: vec![HistogramRecord {
            name: "approx.hints_per_item".into(),
            count: 3,
            sum: 9,
            buckets: vec![(0, 1), (3, 2)],
        }],
        ..ObsReport::default()
    }
}

const GOLDEN: &str = "\
spans (wall clock):
  pipeline                         2.00ms  100.0%  x1
    approx-interp                  1.00ms   50.0%  x1
    baseline-pta                 600.00us   30.0%  x1
      solve                      150.00us    7.5%  x2

top counters (2 of 3):
  interp.steps         1,234,567
  pta.propagations            42

histograms:
  approx.hints_per_item: n=3 mean=3.0 p50<8 p95<8
";

#[test]
fn rendering_matches_golden() {
    let text = render_text(&fixture(), &RenderOptions {
            top_counters: 2,
            ..RenderOptions::default()
        });
    assert_eq!(text, GOLDEN, "rendered:\n{text}");
}

#[test]
fn golden_fixture_roundtrips_through_json() {
    let r = fixture();
    let back = ObsReport::from_json_str(&r.to_json_string()).unwrap();
    assert_eq!(back, r);
    assert_eq!(
        render_text(&back, &RenderOptions {
            top_counters: 2,
            ..RenderOptions::default()
        }),
        GOLDEN
    );
}
