//! JSON round-trip property tests: any `ObsReport` (and each record kind)
//! survives `to_json_string` → `from_json_str` unchanged.

use aji_obs::{
    CounterRecord, GaugeRecord, HistogramRecord, ObsReport, SpanRecord, TraceEvent, TraceKind,
    TraceReport,
};
use aji_support::check::{property, TestCase};
use aji_support::{prop_assert, prop_assert_eq, FromJson, Json, ToJson};

/// `aji-support` JSON carries numbers as `f64`, so integers round-trip
/// exactly only up to 2^53 — plenty for event counts and span
/// nanoseconds (2^53 ns ≈ 104 days), and the bound the generators below
/// stay under.
const MAX_EXACT: u64 = 1 << 53;

/// Name pool exercising separators and characters JSON must escape.
const NAMES: &[&str] = &[
    "parse",
    "approx-interp",
    "pta.propagations",
    "solve",
    "a b",
    "q\"uote",
    "back\\slash",
    "",
];

fn name(tc: &mut TestCase) -> String {
    NAMES[tc.int_in(0usize..NAMES.len())].to_string()
}

fn span(tc: &mut TestCase) -> SpanRecord {
    let depth = tc.int_in(1usize..4);
    let path = (0..depth).map(|_| name(tc)).collect::<Vec<_>>().join("/");
    SpanRecord {
        path,
        count: tc.int_in(0u64..1_000_000),
        total_ns: tc.int_in(0u64..MAX_EXACT),
    }
}

fn histogram(tc: &mut TestCase) -> HistogramRecord {
    let buckets = (0..tc.int_in(0usize..5))
        .map(|_| (tc.int_in(0u32..65), tc.int_in(1u64..1_000)))
        .collect();
    HistogramRecord {
        name: name(tc),
        count: tc.int_in(0u64..1_000_000),
        sum: tc.int_in(0u64..MAX_EXACT),
        buckets,
    }
}

fn trace_event(tc: &mut TestCase) -> TraceEvent {
    TraceEvent {
        step: tc.int_in(0u64..MAX_EXACT),
        wall_ns: tc.int_in(0u64..MAX_EXACT),
        kind: *tc.pick(TraceKind::all()),
        name: name(tc),
        detail: name(tc),
    }
}

fn report(tc: &mut TestCase) -> ObsReport {
    ObsReport {
        spans: (0..tc.int_in(0usize..6)).map(|_| span(tc)).collect(),
        counters: (0..tc.int_in(0usize..6))
            .map(|_| CounterRecord {
                name: name(tc),
                value: tc.int_in(0u64..MAX_EXACT),
            })
            .collect(),
        histograms: (0..tc.int_in(0usize..4)).map(|_| histogram(tc)).collect(),
        gauges: (0..tc.int_in(0usize..4))
            .map(|_| GaugeRecord {
                name: name(tc),
                value: tc.int_in(0u64..MAX_EXACT),
            })
            .collect(),
        trace: tc.bool().then(|| TraceReport {
            events: (0..tc.int_in(0usize..5)).map(|_| trace_event(tc)).collect(),
            dropped: tc.int_in(0u64..1_000),
        }),
    }
}

#[test]
fn obs_report_roundtrips() {
    property("obs_report_roundtrips").cases(200).run(|tc| {
        let r = report(tc);
        let text = r.to_json_string();
        let back = ObsReport::from_json_str(&text).expect("report JSON reparses");
        prop_assert_eq!(back, r);
        Ok(())
    });
}

#[test]
fn span_records_roundtrip() {
    property("span_records_roundtrip").cases(200).run(|tc| {
        let s = span(tc);
        let back = SpanRecord::from_json(&Json::parse(&s.to_json().to_string()).unwrap()).unwrap();
        prop_assert_eq!(back, s);
        Ok(())
    });
}

#[test]
fn histogram_records_roundtrip() {
    property("histogram_records_roundtrip").cases(200).run(|tc| {
        let h = histogram(tc);
        let back =
            HistogramRecord::from_json(&Json::parse(&h.to_json().to_string()).unwrap()).unwrap();
        prop_assert_eq!(back, h);
        Ok(())
    });
}

#[test]
fn rendering_never_panics_and_mentions_every_top_counter() {
    property("rendering_total").cases(100).run(|tc| {
        let r = report(tc);
        let text = aji_obs::render_text(&r, &aji_obs::RenderOptions::default());
        for c in &r.counters {
            if !c.name.is_empty() {
                prop_assert!(text.contains(c.name.as_str()), "missing {}", c.name);
            }
        }
        Ok(())
    });
}
