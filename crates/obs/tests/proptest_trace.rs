//! Property tests for the flight recorder: ring-buffer wraparound and
//! capacity edge cases, deterministic merge of per-thread rings, and
//! validity/round-trip of the Chrome trace-event export — in the style of
//! `crates/support/tests/proptest_json.rs`.

use aji_obs::{TraceConfig, TraceEvent, TraceKind, TraceRecorder, TraceReport};
use aji_support::check::{property, TestCase};
use aji_support::{prop_assert, prop_assert_eq, FromJson, Json, ToJson};

/// Step values stay under 2^53 so they survive the f64 JSON number model
/// exactly (same bound `proptest_json.rs` documents).
const MAX_EXACT: u64 = 1 << 53;

const NAMES: &[&str] = &[
    "pipeline",
    "approx-interp",
    "hot@index.js:3",
    "f:prop#0",
    "a b",
    "q\"uote",
    "back\\slash",
    "",
];

fn event(tc: &mut TestCase, step: u64) -> TraceEvent {
    TraceEvent {
        step,
        wall_ns: tc.int_in(0u64..MAX_EXACT),
        kind: *tc.pick(TraceKind::all()),
        name: (*tc.pick(NAMES)).to_string(),
        detail: (*tc.pick(NAMES)).to_string(),
    }
}

#[test]
fn ring_keeps_newest_and_counts_drops() {
    property("ring_keeps_newest_and_counts_drops")
        .cases(200)
        .run(|tc| {
            let capacity = tc.int_in(1usize..20);
            let n = tc.int_in(0usize..60);
            let rec = TraceRecorder::new(TraceConfig {
                capacity,
                deterministic: true,
                profile: false,
            });
            for i in 0..n {
                rec.record_at(i as u64, TraceKind::IcMiss, &format!("e{i}"), "");
            }
            let rep = rec.report();
            let kept = n.min(capacity);
            prop_assert_eq!(rep.events.len(), kept);
            prop_assert_eq!(rep.dropped, (n - kept) as u64);
            // Exactly the newest `kept` events survive, oldest first.
            for (j, ev) in rep.events.iter().enumerate() {
                prop_assert_eq!(ev.step, (n - kept + j) as u64);
            }
            Ok(())
        });
}

#[test]
fn capacity_one_always_holds_the_latest_event() {
    property("capacity_one_always_holds_the_latest_event")
        .cases(100)
        .run(|tc| {
            let n = tc.int_in(1usize..40);
            let rec = TraceRecorder::new(TraceConfig {
                capacity: 1,
                deterministic: true,
                profile: false,
            });
            for i in 0..n {
                rec.record_at(i as u64, TraceKind::BudgetTrip, "steps", "");
            }
            let rep = rec.report();
            prop_assert_eq!(rep.events.len(), 1);
            prop_assert_eq!(rep.events[0].step, (n - 1) as u64);
            prop_assert_eq!(rep.dropped, (n - 1) as u64);
            Ok(())
        });
}

/// The corpus driver's merge model: each "worker" owns a private ring
/// (step-ordered within itself, as interpreter events are), and the
/// per-worker reports fold together in corpus order. The merged stream
/// must not depend on how events were distributed across workers.
#[test]
fn per_thread_rings_merge_deterministically_in_step_order() {
    property("per_thread_rings_merge_deterministically_in_step_order")
        .cases(150)
        .run(|tc| {
            // A step-sorted master sequence of events.
            let mut steps: Vec<u64> = (0..tc.int_in(0usize..30))
                .map(|_| tc.int_in(0u64..1_000))
                .collect();
            steps.sort_unstable();
            let master: Vec<TraceEvent> = steps.iter().map(|s| event(tc, *s)).collect();

            // Split it across a varying number of workers round-robin — a
            // different interleaving than contiguous chunks — and merge.
            let workers = tc.int_in(1usize..5);
            let mut parts = vec![Vec::new(); workers];
            for (i, ev) in master.iter().enumerate() {
                parts[i % workers].push(ev.clone());
            }
            let parts: Vec<TraceReport> = parts
                .into_iter()
                .map(|events| TraceReport { events, dropped: 0 })
                .collect();
            let merged = TraceReport::merged(&parts);

            // Also merge the contiguous-chunk split.
            let chunk = master.len().div_ceil(workers).max(1);
            let chunked: Vec<TraceReport> = master
                .chunks(chunk)
                .map(|c| TraceReport {
                    events: c.to_vec(),
                    dropped: 0,
                })
                .collect();
            let merged2 = TraceReport::merged(&chunked);

            // Both merges are step-sorted; step multisets agree with the
            // master sequence.
            let merged_steps: Vec<u64> = merged.events.iter().map(|e| e.step).collect();
            prop_assert_eq!(&merged_steps, &steps);
            let merged2_steps: Vec<u64> = merged2.events.iter().map(|e| e.step).collect();
            prop_assert_eq!(&merged2_steps, &steps);
            // With all-distinct steps the two merges are byte-identical.
            let distinct = {
                let mut d = steps.clone();
                d.dedup();
                d.len() == steps.len()
            };
            if distinct {
                prop_assert_eq!(
                    merged.to_json().to_string(),
                    merged2.to_json().to_string()
                );
            }
            Ok(())
        });
}

#[test]
fn trace_report_json_roundtrips() {
    property("trace_report_json_roundtrips").cases(200).run(|tc| {
        let rep = TraceReport {
            events: (0..tc.int_in(0usize..8))
                .map(|_| {
                    let step = tc.int_in(0u64..MAX_EXACT);
                    event(tc, step)
                })
                .collect(),
            dropped: tc.int_in(0u64..MAX_EXACT),
        };
        let text = rep.to_json().to_string();
        let back = TraceReport::from_json(&Json::parse(&text).expect("trace JSON reparses"))
            .expect("trace JSON has report shape");
        prop_assert_eq!(back, rep);
        Ok(())
    });
}

/// The Chrome export must always be valid JSON with the trace-event shape:
/// a `traceEvents` array whose entries all carry `name`/`ph`/`ts`/`pid`/
/// `tid`, span events using balanced-by-construction `B`/`E` phases and
/// everything else `i`, and deterministic events using the step index as
/// their timestamp.
#[test]
fn chrome_trace_export_is_valid() {
    property("chrome_trace_export_is_valid").cases(150).run(|tc| {
        let deterministic = tc.bool();
        let events: Vec<TraceEvent> = (0..tc.int_in(0usize..10))
            .map(|_| {
                let step = tc.int_in(0u64..MAX_EXACT);
                let mut ev = event(tc, step);
                if deterministic {
                    ev.wall_ns = 0;
                }
                ev
            })
            .collect();
        let rep = TraceReport { events, dropped: tc.int_in(0u64..100) };
        let text = rep.to_chrome_trace().to_string();
        let doc = Json::parse(&text).expect("chrome export reparses");
        let Some(Json::Arr(evs)) = doc.get("traceEvents") else {
            return Err("traceEvents is not an array".into());
        };
        prop_assert_eq!(evs.len(), rep.events.len());
        for (ev, src) in evs.iter().zip(&rep.events) {
            for field in ["name", "cat", "ph", "ts", "pid", "tid", "args"] {
                prop_assert!(ev.get(field).is_some(), "missing {field}: {ev:?}");
            }
            let ph = String::from_json(ev.get("ph").unwrap()).unwrap();
            let want = match src.kind {
                TraceKind::SpanBegin => "B",
                TraceKind::SpanEnd => "E",
                _ => "i",
            };
            prop_assert_eq!(&ph, want);
            let ts = match ev.get("ts").unwrap() {
                Json::Num(x) => *x,
                other => return Err(format!("ts not a number: {other:?}")),
            };
            if deterministic {
                prop_assert_eq!(ts, src.step as f64);
            }
            let step = ev.get("args").unwrap().get("step").unwrap();
            prop_assert_eq!(step, &Json::Num(src.step as f64));
        }
        Ok(())
    });
}

/// Deterministic-mode exports are a pure function of the event stream:
/// re-exporting the re-parsed report reproduces identical bytes.
#[test]
fn chrome_trace_deterministic_export_is_stable() {
    property("chrome_trace_deterministic_export_is_stable")
        .cases(100)
        .run(|tc| {
            let rep = TraceReport {
                events: (0..tc.int_in(0usize..8))
                    .map(|_| {
                        let step = tc.int_in(0u64..MAX_EXACT);
                        let mut ev = event(tc, step);
                        ev.wall_ns = 0;
                        ev
                    })
                    .collect(),
                dropped: 0,
            };
            let first = rep.to_chrome_trace().to_string();
            let back =
                TraceReport::from_json(&Json::parse(&rep.to_json().to_string()).unwrap()).unwrap();
            prop_assert_eq!(back.to_chrome_trace().to_string(), first);
            Ok(())
        });
}
