//! The collector: thread-safe [`Registry`], cheap recording handles, and
//! the thread-local scope machinery that routes events to a registry.

use crate::report::{CounterRecord, GaugeRecord, HistogramRecord, ObsReport, SpanRecord};
use crate::trace::{TraceConfig, TraceKind, TraceRecorder};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Number of power-of-two histogram buckets (enough for any `u64`).
pub(crate) const BUCKETS: usize = 65;

/// Aggregated statistics of one span path.
#[derive(Debug, Clone, Copy, Default)]
struct SpanStat {
    count: u64,
    total_ns: u64,
}

/// A bucketed histogram: power-of-two buckets plus count and sum.
#[derive(Debug)]
struct Hist {
    count: AtomicU64,
    sum: AtomicU64,
    buckets: Vec<AtomicU64>,
}

impl Hist {
    fn new() -> Hist {
        Hist {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    fn record(&self, value: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        // Bucket i counts values whose highest set bit is i-1 (bucket 0 is
        // the value 0), i.e. value ∈ [2^(i-1), 2^i).
        let idx = (64 - value.leading_zeros()) as usize;
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
    }
}

/// A thread-safe event collector.
///
/// Counters and histograms are recorded through cached atomic handles
/// (lock-free after the first lookup); span aggregation takes a short
/// uncontended lock at span *exit* only, so even span-heavy phases pay
/// nothing while running.
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    hists: Mutex<BTreeMap<String, Arc<Hist>>>,
    spans: Mutex<BTreeMap<String, SpanStat>>,
    gauges: Mutex<BTreeMap<String, u64>>,
    recorder: OnceLock<Arc<TraceRecorder>>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Creates an empty registry with a flight recorder attached.
    #[must_use]
    pub fn with_recorder(config: TraceConfig) -> Registry {
        let reg = Registry::new();
        let _ = reg.install_recorder(config);
        reg
    }

    /// Creates an empty registry inheriting `other`'s recorder
    /// *configuration* (with a fresh, empty recorder). This is how
    /// per-worker and per-run child registries keep tracing on when the
    /// enclosing registry records traces, without sharing a ring across
    /// threads.
    #[must_use]
    pub fn new_like(other: &Registry) -> Registry {
        match other.recorder() {
            Some(rec) => Registry::with_recorder(*rec.config()),
            None => Registry::new(),
        }
    }

    /// Attaches a flight recorder (idempotent: the first configuration
    /// wins, later calls return the already-installed recorder).
    pub fn install_recorder(&self, config: TraceConfig) -> Arc<TraceRecorder> {
        self.recorder
            .get_or_init(|| Arc::new(TraceRecorder::new(config)))
            .clone()
    }

    /// The attached flight recorder, if any.
    #[must_use]
    pub fn recorder(&self) -> Option<Arc<TraceRecorder>> {
        self.recorder.get().cloned()
    }

    /// Records `value` into the named gauge, keeping the **maximum** seen
    /// — the right merge for peak measurements (RSS, stack depth).
    pub fn gauge_max(&self, name: &str, value: u64) {
        let mut map = self.gauges.lock().unwrap();
        let g = map.entry(name.to_string()).or_insert(0);
        *g = (*g).max(value);
    }

    /// Adds `n` to the named counter (cold-path form; hot paths hold a
    /// [`Counter`] handle from [`counter`] instead).
    pub fn counter_add(&self, name: &str, n: u64) {
        self.counter_cell(name).fetch_add(n, Ordering::Relaxed);
    }

    /// Returns the counter cell named `name`, creating it at zero.
    fn counter_cell(&self, name: &str) -> Arc<AtomicU64> {
        let mut map = self.counters.lock().unwrap();
        if let Some(c) = map.get(name) {
            return c.clone();
        }
        let c = Arc::new(AtomicU64::new(0));
        map.insert(name.to_string(), c.clone());
        c
    }

    fn hist_cell(&self, name: &str) -> Arc<Hist> {
        let mut map = self.hists.lock().unwrap();
        if let Some(h) = map.get(name) {
            return h.clone();
        }
        let h = Arc::new(Hist::new());
        map.insert(name.to_string(), h.clone());
        h
    }

    fn record_span(&self, path: String, elapsed: Duration) {
        let mut map = self.spans.lock().unwrap();
        let st = map.entry(path).or_default();
        st.count += 1;
        st.total_ns += elapsed.as_nanos() as u64;
    }

    /// Snapshots everything recorded so far into a serializable report.
    /// Records appear in deterministic (sorted) order.
    pub fn report(&self) -> ObsReport {
        let spans = self
            .spans
            .lock()
            .unwrap()
            .iter()
            .map(|(path, st)| SpanRecord {
                path: path.clone(),
                count: st.count,
                total_ns: st.total_ns,
            })
            .collect();
        let counters = self
            .counters
            .lock()
            .unwrap()
            .iter()
            .map(|(name, c)| CounterRecord {
                name: name.clone(),
                value: c.load(Ordering::Relaxed),
            })
            .collect();
        let histograms = self
            .hists
            .lock()
            .unwrap()
            .iter()
            .map(|(name, h)| HistogramRecord {
                name: name.clone(),
                count: h.count.load(Ordering::Relaxed),
                sum: h.sum.load(Ordering::Relaxed),
                buckets: h
                    .buckets
                    .iter()
                    .enumerate()
                    .filter_map(|(i, b)| {
                        let n = b.load(Ordering::Relaxed);
                        (n > 0).then_some((i as u32, n))
                    })
                    .collect(),
            })
            .collect();
        let gauges = self
            .gauges
            .lock()
            .unwrap()
            .iter()
            .map(|(name, v)| GaugeRecord {
                name: name.clone(),
                value: *v,
            })
            .collect();
        let trace = self.recorder().map(|rec| rec.report());
        ObsReport {
            spans,
            counters,
            histograms,
            gauges,
            trace,
        }
    }

    /// Adds every record of `report` into this registry — used to fold a
    /// per-run report back into an enclosing (e.g. whole-corpus) registry.
    pub fn absorb(&self, report: &ObsReport) {
        for s in &report.spans {
            let mut map = self.spans.lock().unwrap();
            let st = map.entry(s.path.clone()).or_default();
            st.count += s.count;
            st.total_ns += s.total_ns;
        }
        for c in &report.counters {
            self.counter_cell(&c.name)
                .fetch_add(c.value, Ordering::Relaxed);
        }
        for h in &report.histograms {
            let cell = self.hist_cell(&h.name);
            cell.count.fetch_add(h.count, Ordering::Relaxed);
            cell.sum.fetch_add(h.sum, Ordering::Relaxed);
            for (idx, n) in &h.buckets {
                if let Some(b) = cell.buckets.get(*idx as usize) {
                    b.fetch_add(*n, Ordering::Relaxed);
                }
            }
        }
        for g in &report.gauges {
            self.gauge_max(&g.name, g.value);
        }
        if let (Some(rec), Some(trace)) = (self.recorder.get(), &report.trace) {
            rec.absorb(trace);
        }
    }
}

/// A cheap counter handle: one relaxed `fetch_add` per [`Counter::add`],
/// or nothing at all when observability was inactive at lookup time.
///
/// Obtain one with [`counter`] and keep it for the hot path; by-name
/// recording via [`counter_add`] does a map lookup per call and is meant
/// for cold sites.
#[derive(Debug, Clone, Default)]
pub struct Counter(Option<Arc<AtomicU64>>);

impl Counter {
    /// A handle that records nothing.
    pub fn noop() -> Counter {
        Counter(None)
    }

    /// Adds `n` to the counter.
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(c) = &self.0 {
            c.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Increments the counter by one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Whether this handle records anywhere.
    pub fn is_live(&self) -> bool {
        self.0.is_some()
    }
}

// ---- global switch and thread-local scope ----

static FORCED: AtomicBool = AtomicBool::new(false);
static ENV_ENABLED: OnceLock<bool> = OnceLock::new();
static GLOBAL: OnceLock<Arc<Registry>> = OnceLock::new();

fn env_enabled() -> bool {
    *ENV_ENABLED.get_or_init(|| {
        matches!(
            std::env::var("AJI_OBS").as_deref(),
            Ok("1") | Ok("true") | Ok("on")
        )
    })
}

/// Whether observability is globally on (the `AJI_OBS` environment switch
/// or [`force_enable`]). Scoped registries are active regardless.
pub fn enabled() -> bool {
    FORCED.load(Ordering::Relaxed) || env_enabled()
}

/// Turns global collection on programmatically (used by `aji-report`,
/// which exists to profile and would be useless with collection off).
pub fn force_enable() {
    FORCED.store(true, Ordering::Relaxed);
}

fn global() -> &'static Arc<Registry> {
    GLOBAL.get_or_init(|| Arc::new(Registry::new()))
}

thread_local! {
    /// Stack of (registry, span-stack depth at installation). Span paths
    /// recorded into a registry are relative to its installation depth, so
    /// a per-run registry's report is not prefixed by enclosing spans.
    static SCOPES: RefCell<Vec<(Arc<Registry>, usize)>> = const { RefCell::new(Vec::new()) };
    /// Names of the spans currently open on this thread, outermost first.
    static SPAN_STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

/// The registry events on this thread currently record into: the innermost
/// [`scoped`] registry, else the global one when [`enabled`], else `None`.
pub fn current_registry() -> Option<Arc<Registry>> {
    current().map(|(r, _)| r)
}

fn current() -> Option<(Arc<Registry>, usize)> {
    let scoped = SCOPES.with(|s| s.borrow().last().cloned());
    if scoped.is_some() {
        return scoped;
    }
    enabled().then(|| (global().clone(), 0))
}

/// Runs `f` with `registry` installed as the current thread's collector.
/// Scopes nest; the innermost wins. Span paths inside the scope are
/// relative to the scope (enclosing span names do not leak in).
pub fn scoped<T>(registry: &Arc<Registry>, f: impl FnOnce() -> T) -> T {
    let depth = SPAN_STACK.with(|s| s.borrow().len());
    SCOPES.with(|s| s.borrow_mut().push((registry.clone(), depth)));
    // Pop on unwind too, so a panicking property test doesn't leave its
    // registry installed for the next test on the same thread.
    struct PopOnDrop;
    impl Drop for PopOnDrop {
        fn drop(&mut self) {
            SCOPES.with(|s| {
                s.borrow_mut().pop();
            });
        }
    }
    let _pop = PopOnDrop;
    f()
}

/// Returns a counter handle bound to the current registry ([`Counter::noop`]
/// when observability is inactive). Obtain once, then [`Counter::add`] on
/// the hot path.
pub fn counter(name: &str) -> Counter {
    match current() {
        Some((reg, _)) => Counter(Some(reg.counter_cell(name))),
        None => Counter::noop(),
    }
}

/// Adds `n` to the named counter of the current registry (cold-path form:
/// one map lookup per call).
pub fn counter_add(name: &str, n: u64) {
    if let Some((reg, _)) = current() {
        reg.counter_cell(name).fetch_add(n, Ordering::Relaxed);
    }
}

/// Records `value` into the named histogram of the current registry.
pub fn histogram_record(name: &str, value: u64) {
    if let Some((reg, _)) = current() {
        reg.hist_cell(name).record(value);
    }
}

/// Records `value` into the named gauge of the current registry, keeping
/// the maximum seen (peak semantics).
pub fn gauge_max(name: &str, value: u64) {
    if let Some((reg, _)) = current() {
        reg.gauge_max(name, value);
    }
}

/// The flight recorder of the current registry, if the current registry
/// has one installed. Cold sites that emit several events in a row should
/// fetch this once instead of calling [`trace_event`] repeatedly.
#[must_use]
pub fn trace_recorder() -> Option<Arc<TraceRecorder>> {
    current().and_then(|(reg, _)| reg.recorder())
}

/// Records a trace event into the current registry's recorder, if any
/// (cold-path convenience: one registry lookup per call).
pub fn trace_event(kind: TraceKind, name: &str, detail: &str) {
    if let Some(rec) = trace_recorder() {
        rec.record(kind, name, detail);
    }
}

/// Reads the process's peak resident set size (`VmHWM` from
/// `/proc/self/status`, in kB) into the `process.peak_rss_kb` gauge of the
/// current registry. Returns the value read, or `None` when the procfs
/// field is unavailable (non-Linux) or no registry is active.
pub fn record_peak_rss() -> Option<u64> {
    let (reg, _) = current()?;
    let kb = peak_rss_kb()?;
    reg.gauge_max("process.peak_rss_kb", kb);
    Some(kb)
}

/// Parses `VmHWM` (peak RSS, kB) out of `/proc/self/status`.
fn peak_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

/// A timed hierarchical span. Created by [`span`]; records its elapsed
/// wall-clock time under `parent/…/name` when dropped (or when
/// [`SpanGuard::finish`] is called, which also returns the elapsed time).
///
/// The guard always measures time — [`SpanGuard::finish`] is meaningful
/// even with observability off — but records only when a registry was
/// active at creation.
#[must_use = "a span records when the guard is dropped; binding it to _ drops it immediately"]
#[derive(Debug)]
pub struct SpanGuard {
    start: Instant,
    /// Registry to record into and the span-path base depth, when active.
    rec: Option<(Arc<Registry>, usize)>,
    /// Flight recorder to emit the matching `SpanEnd` into, when the
    /// registry had one at open time.
    trace: Option<(Arc<TraceRecorder>, &'static str)>,
    done: bool,
}

/// Opens a span named `name`. Nesting is tracked per thread: spans opened
/// while this guard is live record under `name/…`.
pub fn span(name: &'static str) -> SpanGuard {
    let rec = current();
    let trace = rec.as_ref().and_then(|(reg, _)| reg.recorder()).map(|t| {
        t.record(TraceKind::SpanBegin, name, "");
        (t, name)
    });
    if rec.is_some() {
        SPAN_STACK.with(|s| s.borrow_mut().push(name));
    }
    SpanGuard {
        start: Instant::now(),
        rec,
        trace,
        done: false,
    }
}

impl SpanGuard {
    /// Time elapsed since the span opened.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Closes the span now and returns its elapsed time.
    pub fn finish(mut self) -> Duration {
        let elapsed = self.start.elapsed();
        self.record(elapsed);
        elapsed
    }

    fn record(&mut self, elapsed: Duration) {
        if self.done {
            return;
        }
        self.done = true;
        if let Some((t, name)) = self.trace.take() {
            t.record(TraceKind::SpanEnd, name, "");
        }
        if let Some((reg, base)) = self.rec.take() {
            let path = SPAN_STACK.with(|s| {
                let mut stack = s.borrow_mut();
                let path = stack[base.min(stack.len())..].join("/");
                stack.pop();
                path
            });
            if !path.is_empty() {
                reg.record_span(path, elapsed);
            }
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let elapsed = self.start.elapsed();
        self.record(elapsed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_histograms_accumulate() {
        let reg = Arc::new(Registry::new());
        scoped(&reg, || {
            let c = counter("x");
            assert!(c.is_live());
            c.add(3);
            c.inc();
            counter_add("x", 6);
            histogram_record("h", 0);
            histogram_record("h", 1);
            histogram_record("h", 1000);
        });
        let rep = reg.report();
        assert_eq!(rep.counter("x"), Some(10));
        let h = &rep.histograms[0];
        assert_eq!(h.count, 3);
        assert_eq!(h.sum, 1001);
        // 0 → bucket 0, 1 → bucket 1, 1000 → bucket 10 ([512, 1024)).
        assert_eq!(h.buckets, vec![(0, 1), (1, 1), (10, 1)]);
    }

    #[test]
    fn spans_nest_into_paths() {
        let reg = Arc::new(Registry::new());
        scoped(&reg, || {
            let _a = span("a");
            {
                let _b = span("b");
            }
            {
                let _b = span("b");
            }
        });
        let rep = reg.report();
        let paths: Vec<(&str, u64)> = rep
            .spans
            .iter()
            .map(|s| (s.path.as_str(), s.count))
            .collect();
        assert_eq!(paths, vec![("a", 1), ("a/b", 2)]);
    }

    #[test]
    fn scope_base_depth_hides_enclosing_spans() {
        let outer = Arc::new(Registry::new());
        let inner = Arc::new(Registry::new());
        scoped(&outer, || {
            let _o = span("outer");
            scoped(&inner, || {
                let _i = span("inner");
            });
        });
        assert_eq!(inner.report().spans[0].path, "inner");
        assert_eq!(outer.report().spans[0].path, "outer");
    }

    #[test]
    fn inactive_recording_is_noop() {
        // No scope installed and AJI_OBS unset in the test environment:
        // handles must be no-ops (and must not panic).
        if enabled() {
            return; // environment has AJI_OBS set; skip.
        }
        let c = counter("dead");
        assert!(!c.is_live());
        c.add(5);
        counter_add("dead", 5);
        histogram_record("dead", 5);
        let g = span("dead");
        assert!(g.finish() >= Duration::ZERO);
    }

    #[test]
    fn absorb_folds_reports() {
        let a = Arc::new(Registry::new());
        let b = Arc::new(Registry::new());
        scoped(&a, || {
            counter_add("n", 2);
            histogram_record("h", 4);
            let _s = span("phase");
        });
        scoped(&b, || {
            counter_add("n", 3);
            histogram_record("h", 4);
            let _s = span("phase");
        });
        b.absorb(&a.report());
        let rep = b.report();
        assert_eq!(rep.counter("n"), Some(5));
        assert_eq!(rep.spans[0].count, 2);
        assert_eq!(rep.histograms[0].count, 2);
        assert_eq!(rep.histograms[0].sum, 8);
    }

    #[test]
    fn gauges_keep_maximum_and_absorb_merges_by_max() {
        let a = Arc::new(Registry::new());
        let b = Arc::new(Registry::new());
        a.gauge_max("peak", 10);
        a.gauge_max("peak", 4);
        b.gauge_max("peak", 7);
        scoped(&a, || gauge_max("peak", 9));
        assert_eq!(a.report().gauge("peak"), Some(10));
        b.absorb(&a.report());
        assert_eq!(b.report().gauge("peak"), Some(10));
    }

    #[test]
    fn spans_emit_trace_events_when_recorder_installed() {
        let reg = Arc::new(Registry::with_recorder(TraceConfig::deterministic()));
        scoped(&reg, || {
            let _a = span("outer");
            let _b = span("inner");
        });
        let trace = reg.report().trace.unwrap();
        let seq: Vec<(&str, &str)> = trace
            .events
            .iter()
            .map(|e| (e.kind.key(), e.name.as_str()))
            .collect();
        assert_eq!(
            seq,
            vec![
                ("span_begin", "outer"),
                ("span_begin", "inner"),
                ("span_end", "inner"),
                ("span_end", "outer"),
            ]
        );
    }

    #[test]
    fn new_like_inherits_recorder_config_with_fresh_ring() {
        let parent = Registry::with_recorder(TraceConfig::deterministic());
        parent.recorder().unwrap().record(TraceKind::IcMiss, "x", "");
        let child = Registry::new_like(&parent);
        let rec = child.recorder().expect("child inherits recorder");
        assert!(rec.config().deterministic);
        assert!(rec.report().events.is_empty());
        assert!(Registry::new_like(&Registry::new()).recorder().is_none());
    }

    #[test]
    fn absorb_appends_child_trace_in_order() {
        let parent = Arc::new(Registry::with_recorder(TraceConfig::deterministic()));
        let child = Registry::new_like(&parent);
        child
            .recorder()
            .unwrap()
            .record_at(5, TraceKind::BudgetTrip, "steps", "");
        parent.absorb(&child.report());
        let trace = parent.report().trace.unwrap();
        assert_eq!(trace.events.len(), 1);
        assert_eq!(trace.events[0].step, 5);
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn peak_rss_gauge_reads_procfs() {
        let reg = Arc::new(Registry::new());
        let read = scoped(&reg, record_peak_rss);
        let kb = read.expect("VmHWM available on Linux");
        assert!(kb > 0);
        assert_eq!(reg.report().gauge("process.peak_rss_kb"), Some(kb));
    }

    #[test]
    fn finish_returns_elapsed_and_records_once() {
        let reg = Arc::new(Registry::new());
        scoped(&reg, || {
            let g = span("once");
            let d = g.finish();
            assert!(d >= Duration::ZERO);
        });
        assert_eq!(reg.report().spans[0].count, 1);
    }
}
