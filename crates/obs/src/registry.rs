//! The collector: thread-safe [`Registry`], cheap recording handles, and
//! the thread-local scope machinery that routes events to a registry.

use crate::report::{CounterRecord, HistogramRecord, ObsReport, SpanRecord};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Number of power-of-two histogram buckets (enough for any `u64`).
pub(crate) const BUCKETS: usize = 65;

/// Aggregated statistics of one span path.
#[derive(Debug, Clone, Copy, Default)]
struct SpanStat {
    count: u64,
    total_ns: u64,
}

/// A bucketed histogram: power-of-two buckets plus count and sum.
#[derive(Debug)]
struct Hist {
    count: AtomicU64,
    sum: AtomicU64,
    buckets: Vec<AtomicU64>,
}

impl Hist {
    fn new() -> Hist {
        Hist {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    fn record(&self, value: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        // Bucket i counts values whose highest set bit is i-1 (bucket 0 is
        // the value 0), i.e. value ∈ [2^(i-1), 2^i).
        let idx = (64 - value.leading_zeros()) as usize;
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
    }
}

/// A thread-safe event collector.
///
/// Counters and histograms are recorded through cached atomic handles
/// (lock-free after the first lookup); span aggregation takes a short
/// uncontended lock at span *exit* only, so even span-heavy phases pay
/// nothing while running.
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    hists: Mutex<BTreeMap<String, Arc<Hist>>>,
    spans: Mutex<BTreeMap<String, SpanStat>>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Returns the counter cell named `name`, creating it at zero.
    fn counter_cell(&self, name: &str) -> Arc<AtomicU64> {
        let mut map = self.counters.lock().unwrap();
        if let Some(c) = map.get(name) {
            return c.clone();
        }
        let c = Arc::new(AtomicU64::new(0));
        map.insert(name.to_string(), c.clone());
        c
    }

    fn hist_cell(&self, name: &str) -> Arc<Hist> {
        let mut map = self.hists.lock().unwrap();
        if let Some(h) = map.get(name) {
            return h.clone();
        }
        let h = Arc::new(Hist::new());
        map.insert(name.to_string(), h.clone());
        h
    }

    fn record_span(&self, path: String, elapsed: Duration) {
        let mut map = self.spans.lock().unwrap();
        let st = map.entry(path).or_default();
        st.count += 1;
        st.total_ns += elapsed.as_nanos() as u64;
    }

    /// Snapshots everything recorded so far into a serializable report.
    /// Records appear in deterministic (sorted) order.
    pub fn report(&self) -> ObsReport {
        let spans = self
            .spans
            .lock()
            .unwrap()
            .iter()
            .map(|(path, st)| SpanRecord {
                path: path.clone(),
                count: st.count,
                total_ns: st.total_ns,
            })
            .collect();
        let counters = self
            .counters
            .lock()
            .unwrap()
            .iter()
            .map(|(name, c)| CounterRecord {
                name: name.clone(),
                value: c.load(Ordering::Relaxed),
            })
            .collect();
        let histograms = self
            .hists
            .lock()
            .unwrap()
            .iter()
            .map(|(name, h)| HistogramRecord {
                name: name.clone(),
                count: h.count.load(Ordering::Relaxed),
                sum: h.sum.load(Ordering::Relaxed),
                buckets: h
                    .buckets
                    .iter()
                    .enumerate()
                    .filter_map(|(i, b)| {
                        let n = b.load(Ordering::Relaxed);
                        (n > 0).then_some((i as u32, n))
                    })
                    .collect(),
            })
            .collect();
        ObsReport {
            spans,
            counters,
            histograms,
        }
    }

    /// Adds every record of `report` into this registry — used to fold a
    /// per-run report back into an enclosing (e.g. whole-corpus) registry.
    pub fn absorb(&self, report: &ObsReport) {
        for s in &report.spans {
            let mut map = self.spans.lock().unwrap();
            let st = map.entry(s.path.clone()).or_default();
            st.count += s.count;
            st.total_ns += s.total_ns;
        }
        for c in &report.counters {
            self.counter_cell(&c.name)
                .fetch_add(c.value, Ordering::Relaxed);
        }
        for h in &report.histograms {
            let cell = self.hist_cell(&h.name);
            cell.count.fetch_add(h.count, Ordering::Relaxed);
            cell.sum.fetch_add(h.sum, Ordering::Relaxed);
            for (idx, n) in &h.buckets {
                if let Some(b) = cell.buckets.get(*idx as usize) {
                    b.fetch_add(*n, Ordering::Relaxed);
                }
            }
        }
    }
}

/// A cheap counter handle: one relaxed `fetch_add` per [`Counter::add`],
/// or nothing at all when observability was inactive at lookup time.
///
/// Obtain one with [`counter`] and keep it for the hot path; by-name
/// recording via [`counter_add`] does a map lookup per call and is meant
/// for cold sites.
#[derive(Debug, Clone, Default)]
pub struct Counter(Option<Arc<AtomicU64>>);

impl Counter {
    /// A handle that records nothing.
    pub fn noop() -> Counter {
        Counter(None)
    }

    /// Adds `n` to the counter.
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(c) = &self.0 {
            c.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Increments the counter by one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Whether this handle records anywhere.
    pub fn is_live(&self) -> bool {
        self.0.is_some()
    }
}

// ---- global switch and thread-local scope ----

static FORCED: AtomicBool = AtomicBool::new(false);
static ENV_ENABLED: OnceLock<bool> = OnceLock::new();
static GLOBAL: OnceLock<Arc<Registry>> = OnceLock::new();

fn env_enabled() -> bool {
    *ENV_ENABLED.get_or_init(|| {
        matches!(
            std::env::var("AJI_OBS").as_deref(),
            Ok("1") | Ok("true") | Ok("on")
        )
    })
}

/// Whether observability is globally on (the `AJI_OBS` environment switch
/// or [`force_enable`]). Scoped registries are active regardless.
pub fn enabled() -> bool {
    FORCED.load(Ordering::Relaxed) || env_enabled()
}

/// Turns global collection on programmatically (used by `aji-report`,
/// which exists to profile and would be useless with collection off).
pub fn force_enable() {
    FORCED.store(true, Ordering::Relaxed);
}

fn global() -> &'static Arc<Registry> {
    GLOBAL.get_or_init(|| Arc::new(Registry::new()))
}

thread_local! {
    /// Stack of (registry, span-stack depth at installation). Span paths
    /// recorded into a registry are relative to its installation depth, so
    /// a per-run registry's report is not prefixed by enclosing spans.
    static SCOPES: RefCell<Vec<(Arc<Registry>, usize)>> = const { RefCell::new(Vec::new()) };
    /// Names of the spans currently open on this thread, outermost first.
    static SPAN_STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

/// The registry events on this thread currently record into: the innermost
/// [`scoped`] registry, else the global one when [`enabled`], else `None`.
pub fn current_registry() -> Option<Arc<Registry>> {
    current().map(|(r, _)| r)
}

fn current() -> Option<(Arc<Registry>, usize)> {
    let scoped = SCOPES.with(|s| s.borrow().last().cloned());
    if scoped.is_some() {
        return scoped;
    }
    enabled().then(|| (global().clone(), 0))
}

/// Runs `f` with `registry` installed as the current thread's collector.
/// Scopes nest; the innermost wins. Span paths inside the scope are
/// relative to the scope (enclosing span names do not leak in).
pub fn scoped<T>(registry: &Arc<Registry>, f: impl FnOnce() -> T) -> T {
    let depth = SPAN_STACK.with(|s| s.borrow().len());
    SCOPES.with(|s| s.borrow_mut().push((registry.clone(), depth)));
    // Pop on unwind too, so a panicking property test doesn't leave its
    // registry installed for the next test on the same thread.
    struct PopOnDrop;
    impl Drop for PopOnDrop {
        fn drop(&mut self) {
            SCOPES.with(|s| {
                s.borrow_mut().pop();
            });
        }
    }
    let _pop = PopOnDrop;
    f()
}

/// Returns a counter handle bound to the current registry ([`Counter::noop`]
/// when observability is inactive). Obtain once, then [`Counter::add`] on
/// the hot path.
pub fn counter(name: &str) -> Counter {
    match current() {
        Some((reg, _)) => Counter(Some(reg.counter_cell(name))),
        None => Counter::noop(),
    }
}

/// Adds `n` to the named counter of the current registry (cold-path form:
/// one map lookup per call).
pub fn counter_add(name: &str, n: u64) {
    if let Some((reg, _)) = current() {
        reg.counter_cell(name).fetch_add(n, Ordering::Relaxed);
    }
}

/// Records `value` into the named histogram of the current registry.
pub fn histogram_record(name: &str, value: u64) {
    if let Some((reg, _)) = current() {
        reg.hist_cell(name).record(value);
    }
}

/// A timed hierarchical span. Created by [`span`]; records its elapsed
/// wall-clock time under `parent/…/name` when dropped (or when
/// [`SpanGuard::finish`] is called, which also returns the elapsed time).
///
/// The guard always measures time — [`SpanGuard::finish`] is meaningful
/// even with observability off — but records only when a registry was
/// active at creation.
#[must_use = "a span records when the guard is dropped; binding it to _ drops it immediately"]
#[derive(Debug)]
pub struct SpanGuard {
    start: Instant,
    /// Registry to record into and the span-path base depth, when active.
    rec: Option<(Arc<Registry>, usize)>,
    done: bool,
}

/// Opens a span named `name`. Nesting is tracked per thread: spans opened
/// while this guard is live record under `name/…`.
pub fn span(name: &'static str) -> SpanGuard {
    let rec = current();
    if rec.is_some() {
        SPAN_STACK.with(|s| s.borrow_mut().push(name));
    }
    SpanGuard {
        start: Instant::now(),
        rec,
        done: false,
    }
}

impl SpanGuard {
    /// Time elapsed since the span opened.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Closes the span now and returns its elapsed time.
    pub fn finish(mut self) -> Duration {
        let elapsed = self.start.elapsed();
        self.record(elapsed);
        elapsed
    }

    fn record(&mut self, elapsed: Duration) {
        if self.done {
            return;
        }
        self.done = true;
        if let Some((reg, base)) = self.rec.take() {
            let path = SPAN_STACK.with(|s| {
                let mut stack = s.borrow_mut();
                let path = stack[base.min(stack.len())..].join("/");
                stack.pop();
                path
            });
            if !path.is_empty() {
                reg.record_span(path, elapsed);
            }
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let elapsed = self.start.elapsed();
        self.record(elapsed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_histograms_accumulate() {
        let reg = Arc::new(Registry::new());
        scoped(&reg, || {
            let c = counter("x");
            assert!(c.is_live());
            c.add(3);
            c.inc();
            counter_add("x", 6);
            histogram_record("h", 0);
            histogram_record("h", 1);
            histogram_record("h", 1000);
        });
        let rep = reg.report();
        assert_eq!(rep.counter("x"), Some(10));
        let h = &rep.histograms[0];
        assert_eq!(h.count, 3);
        assert_eq!(h.sum, 1001);
        // 0 → bucket 0, 1 → bucket 1, 1000 → bucket 10 ([512, 1024)).
        assert_eq!(h.buckets, vec![(0, 1), (1, 1), (10, 1)]);
    }

    #[test]
    fn spans_nest_into_paths() {
        let reg = Arc::new(Registry::new());
        scoped(&reg, || {
            let _a = span("a");
            {
                let _b = span("b");
            }
            {
                let _b = span("b");
            }
        });
        let rep = reg.report();
        let paths: Vec<(&str, u64)> = rep
            .spans
            .iter()
            .map(|s| (s.path.as_str(), s.count))
            .collect();
        assert_eq!(paths, vec![("a", 1), ("a/b", 2)]);
    }

    #[test]
    fn scope_base_depth_hides_enclosing_spans() {
        let outer = Arc::new(Registry::new());
        let inner = Arc::new(Registry::new());
        scoped(&outer, || {
            let _o = span("outer");
            scoped(&inner, || {
                let _i = span("inner");
            });
        });
        assert_eq!(inner.report().spans[0].path, "inner");
        assert_eq!(outer.report().spans[0].path, "outer");
    }

    #[test]
    fn inactive_recording_is_noop() {
        // No scope installed and AJI_OBS unset in the test environment:
        // handles must be no-ops (and must not panic).
        if enabled() {
            return; // environment has AJI_OBS set; skip.
        }
        let c = counter("dead");
        assert!(!c.is_live());
        c.add(5);
        counter_add("dead", 5);
        histogram_record("dead", 5);
        let g = span("dead");
        assert!(g.finish() >= Duration::ZERO);
    }

    #[test]
    fn absorb_folds_reports() {
        let a = Arc::new(Registry::new());
        let b = Arc::new(Registry::new());
        scoped(&a, || {
            counter_add("n", 2);
            histogram_record("h", 4);
            let _s = span("phase");
        });
        scoped(&b, || {
            counter_add("n", 3);
            histogram_record("h", 4);
            let _s = span("phase");
        });
        b.absorb(&a.report());
        let rep = b.report();
        assert_eq!(rep.counter("n"), Some(5));
        assert_eq!(rep.spans[0].count, 2);
        assert_eq!(rep.histograms[0].count, 2);
        assert_eq!(rep.histograms[0].sum, 8);
    }

    #[test]
    fn finish_returns_elapsed_and_records_once() {
        let reg = Arc::new(Registry::new());
        scoped(&reg, || {
            let g = span("once");
            let d = g.finish();
            assert!(d >= Duration::ZERO);
        });
        assert_eq!(reg.report().spans[0].count, 1);
    }
}
