//! The flight recorder: a fixed-capacity ring buffer of structured
//! [`TraceEvent`]s, each stamped with both a wall-clock offset and the
//! interpreter **step index** at which it fired.
//!
//! # Why two clocks
//!
//! Wall-clock timestamps are what Chrome/Perfetto render, but they are
//! nondeterministic. The step index — the interpreter's own work counter —
//! is deterministic for a deterministic program, so a recorder created
//! with [`TraceConfig::deterministic`] zeroes the wall clock and stamps
//! events with the step index alone. Two deterministic-mode runs of the
//! same corpus produce **byte-identical** event streams regardless of
//! thread count, extending the PR 4/7 determinism guarantee from
//! aggregate reports to full traces.
//!
//! # The step-index clock
//!
//! The recorder holds an atomic step clock. Interpreter-side hooks record
//! events with an explicit step ([`TraceRecorder::record_at`]), which also
//! advances the clock; pipeline-side events (span begin/end, oracle
//! findings, hint applications) stamp whatever the clock last read
//! ([`TraceRecorder::record`]). The step index is therefore "interpreter
//! steps charged by the most recent interpreter event", which is exact
//! inside interpretation phases and frozen (not interpolated) outside
//! them. It resets whenever the owning interpreter resets its counter.
//!
//! # Capacity
//!
//! The ring holds at most [`TraceConfig::capacity`] events; the oldest are
//! overwritten and counted in [`TraceReport::dropped`]. Recording into a
//! full ring is O(1) and allocation-free apart from the event strings.

use aji_support::{FromJson, Json, JsonError, ToJson};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// What happened. Each variant has a stable string key used in JSON.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// A timed span opened (`name` is the span name).
    SpanBegin,
    /// A timed span closed.
    SpanEnd,
    /// The bytecode compiler produced a chunk for a function.
    VmCompile,
    /// The bytecode compiler bailed on a function (`detail` is the reason).
    VmBail,
    /// An inline cache missed (`name` is the site key `func:prop#ic`).
    IcMiss,
    /// An interpretation budget tripped (`name` is the budget kind).
    BudgetTrip,
    /// The soundness oracle classified a missed edge (`name` is the cause).
    OracleFinding,
    /// The pointer analysis applied an approximation hint (`name` is the
    /// rule, `detail` the property or module).
    HintApply,
}

impl TraceKind {
    /// Stable string key for this kind (used in JSON and Chrome export).
    #[must_use]
    pub fn key(self) -> &'static str {
        match self {
            TraceKind::SpanBegin => "span_begin",
            TraceKind::SpanEnd => "span_end",
            TraceKind::VmCompile => "vm_compile",
            TraceKind::VmBail => "vm_bail",
            TraceKind::IcMiss => "ic_miss",
            TraceKind::BudgetTrip => "budget_trip",
            TraceKind::OracleFinding => "oracle_finding",
            TraceKind::HintApply => "hint_apply",
        }
    }

    /// Parses a kind from its stable key.
    #[must_use]
    pub fn from_key(key: &str) -> Option<TraceKind> {
        Some(match key {
            "span_begin" => TraceKind::SpanBegin,
            "span_end" => TraceKind::SpanEnd,
            "vm_compile" => TraceKind::VmCompile,
            "vm_bail" => TraceKind::VmBail,
            "ic_miss" => TraceKind::IcMiss,
            "budget_trip" => TraceKind::BudgetTrip,
            "oracle_finding" => TraceKind::OracleFinding,
            "hint_apply" => TraceKind::HintApply,
            _ => return None,
        })
    }

    /// All kinds, in declaration order (useful for tests and generators).
    #[must_use]
    pub fn all() -> &'static [TraceKind] {
        &[
            TraceKind::SpanBegin,
            TraceKind::SpanEnd,
            TraceKind::VmCompile,
            TraceKind::VmBail,
            TraceKind::IcMiss,
            TraceKind::BudgetTrip,
            TraceKind::OracleFinding,
            TraceKind::HintApply,
        ]
    }
}

/// One recorded event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Interpreter step index at which the event fired (see the module
    /// docs for the exact clock semantics).
    pub step: u64,
    /// Nanoseconds since the recorder was created; always 0 in
    /// deterministic mode.
    pub wall_ns: u64,
    /// What happened.
    pub kind: TraceKind,
    /// Primary subject (span name, IC site key, budget kind, …).
    pub name: String,
    /// Free-form secondary detail (bail reason, hint property, …).
    pub detail: String,
}

/// Recorder configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceConfig {
    /// Maximum events retained (oldest dropped first). Clamped to ≥ 1.
    pub capacity: usize,
    /// Zero the wall clock so event streams are byte-identical across
    /// reruns and thread counts.
    pub deterministic: bool,
    /// Enable the interpreter's step-attributed hot-function profiler
    /// (per-function `profile.fn.*` counters and IC-miss site counters).
    pub profile: bool,
}

impl Default for TraceConfig {
    fn default() -> TraceConfig {
        TraceConfig {
            capacity: 65_536,
            deterministic: false,
            profile: true,
        }
    }
}

impl TraceConfig {
    /// A deterministic-mode configuration with the default capacity.
    #[must_use]
    pub fn deterministic() -> TraceConfig {
        TraceConfig {
            deterministic: true,
            ..TraceConfig::default()
        }
    }
}

#[derive(Debug, Default)]
struct Ring {
    buf: VecDeque<TraceEvent>,
    dropped: u64,
}

/// The flight recorder attached to a
/// [`Registry`](crate::Registry): a bounded, thread-safe ring of
/// [`TraceEvent`]s plus the atomic step clock.
///
/// Recording takes one short uncontended lock; in the corpus driver every
/// project runs against its *own* recorder (fresh per-worker registry), so
/// there is no cross-thread contention and — because per-project rings
/// fill identically no matter which thread runs them — the merged stream
/// is thread-count invariant.
#[derive(Debug)]
pub struct TraceRecorder {
    config: TraceConfig,
    epoch: Instant,
    clock: AtomicU64,
    ring: Mutex<Ring>,
}

impl TraceRecorder {
    /// Creates a recorder with the given configuration.
    #[must_use]
    pub fn new(mut config: TraceConfig) -> TraceRecorder {
        config.capacity = config.capacity.max(1);
        TraceRecorder {
            config,
            epoch: Instant::now(),
            clock: AtomicU64::new(0),
            ring: Mutex::new(Ring::default()),
        }
    }

    /// The recorder's configuration.
    #[must_use]
    pub fn config(&self) -> &TraceConfig {
        &self.config
    }

    /// Current value of the step clock.
    #[must_use]
    pub fn step(&self) -> u64 {
        self.clock.load(Ordering::Relaxed)
    }

    /// Sets the step clock without recording an event (interpreter entry
    /// points use this so pipeline events that follow carry a fresh step).
    pub fn set_step(&self, step: u64) {
        self.clock.store(step, Ordering::Relaxed);
    }

    fn wall_ns(&self) -> u64 {
        if self.config.deterministic {
            0
        } else {
            self.epoch.elapsed().as_nanos() as u64
        }
    }

    /// Records an event stamped with the current step clock.
    pub fn record(&self, kind: TraceKind, name: &str, detail: &str) {
        let step = self.step();
        self.push(TraceEvent {
            step,
            wall_ns: self.wall_ns(),
            kind,
            name: name.to_string(),
            detail: detail.to_string(),
        });
    }

    /// Records an event at an explicit step index and advances the step
    /// clock to it — the interpreter-side entry point.
    pub fn record_at(&self, step: u64, kind: TraceKind, name: &str, detail: &str) {
        self.clock.store(step, Ordering::Relaxed);
        self.push(TraceEvent {
            step,
            wall_ns: self.wall_ns(),
            kind,
            name: name.to_string(),
            detail: detail.to_string(),
        });
    }

    fn push(&self, ev: TraceEvent) {
        let mut ring = self.ring.lock().unwrap();
        if ring.buf.len() == self.config.capacity {
            ring.buf.pop_front();
            ring.dropped += 1;
        }
        ring.buf.push_back(ev);
    }

    /// Snapshots the ring, oldest event first.
    #[must_use]
    pub fn report(&self) -> TraceReport {
        let ring = self.ring.lock().unwrap();
        TraceReport {
            events: ring.buf.iter().cloned().collect(),
            dropped: ring.dropped,
        }
    }

    /// Appends another report's events (stamps preserved) into this ring —
    /// how per-project traces fold into the corpus-level recorder, in
    /// corpus order, so the merged stream is identical serial vs parallel.
    pub fn absorb(&self, report: &TraceReport) {
        for ev in &report.events {
            self.push(ev.clone());
        }
        self.ring.lock().unwrap().dropped += report.dropped;
    }
}

/// Serialized snapshot of a recorder's ring.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TraceReport {
    /// Events, oldest first.
    pub events: Vec<TraceEvent>,
    /// Events evicted because the ring was full.
    pub dropped: u64,
}

impl TraceReport {
    /// Whether nothing was recorded (or everything was dropped).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty() && self.dropped == 0
    }

    /// Merges several reports into one, stably ordered by step index —
    /// events with equal steps keep their (part, position) order, so the
    /// merge of per-thread rings is deterministic.
    #[must_use]
    pub fn merged(parts: &[TraceReport]) -> TraceReport {
        let mut events: Vec<TraceEvent> = parts.iter().flat_map(|p| p.events.clone()).collect();
        events.sort_by_key(|e| e.step);
        TraceReport {
            events,
            dropped: parts.iter().map(|p| p.dropped).sum(),
        }
    }

    /// Exports to Chrome/Perfetto trace-event JSON
    /// (`{"traceEvents": [...]}`, the format `chrome://tracing` and
    /// <https://ui.perfetto.dev> load).
    ///
    /// Span begin/end pairs become `"B"`/`"E"` duration events; everything
    /// else becomes an `"i"` instant. The `ts` field (microseconds) is the
    /// wall clock when available; events recorded in deterministic mode
    /// (wall clock zeroed) use the step index as `ts` instead, so the
    /// export stays byte-identical across reruns and the timeline reads in
    /// units of interpreter work.
    #[must_use]
    pub fn to_chrome_trace(&self) -> Json {
        let events = self
            .events
            .iter()
            .map(|e| {
                let ph = match e.kind {
                    TraceKind::SpanBegin => "B",
                    TraceKind::SpanEnd => "E",
                    _ => "i",
                };
                let ts = if e.wall_ns == 0 {
                    e.step as f64
                } else {
                    e.wall_ns as f64 / 1000.0
                };
                let mut fields = vec![
                    ("name", Json::Str(e.name.clone())),
                    ("cat", Json::Str(e.kind.key().into())),
                    ("ph", Json::Str(ph.into())),
                    ("ts", Json::Num(ts)),
                    ("pid", Json::Num(1.0)),
                    ("tid", Json::Num(1.0)),
                ];
                if ph == "i" {
                    fields.push(("s", Json::Str("t".into())));
                }
                let mut args = vec![("step", Json::Num(e.step as f64))];
                if !e.detail.is_empty() {
                    args.push(("detail", Json::Str(e.detail.clone())));
                }
                fields.push(("args", Json::obj(args)));
                Json::obj(fields)
            })
            .collect();
        Json::obj(vec![
            ("traceEvents", Json::Arr(events)),
            ("displayTimeUnit", Json::Str("ms".into())),
            (
                "otherData",
                Json::obj(vec![("dropped", Json::Num(self.dropped as f64))]),
            ),
        ])
    }
}

fn get<'j>(v: &'j Json, key: &str) -> Result<&'j Json, JsonError> {
    v.get(key)
        .ok_or_else(|| JsonError::shape(format!("missing field '{key}'")))
}

impl ToJson for TraceEvent {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("step", self.step.to_json()),
            ("wall_ns", self.wall_ns.to_json()),
            ("kind", Json::Str(self.kind.key().into())),
            ("name", self.name.to_json()),
            ("detail", self.detail.to_json()),
        ])
    }
}

impl FromJson for TraceEvent {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let key = String::from_json(get(v, "kind")?)?;
        let kind = TraceKind::from_key(&key)
            .ok_or_else(|| JsonError::shape(format!("unknown trace kind '{key}'")))?;
        Ok(TraceEvent {
            step: u64::from_json(get(v, "step")?)?,
            wall_ns: u64::from_json(get(v, "wall_ns")?)?,
            kind,
            name: String::from_json(get(v, "name")?)?,
            detail: String::from_json(get(v, "detail")?)?,
        })
    }
}

impl ToJson for TraceReport {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("events", self.events.to_json()),
            ("dropped", self.dropped.to_json()),
        ])
    }
}

impl FromJson for TraceReport {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(TraceReport {
            events: Vec::from_json(get(v, "events")?)?,
            dropped: u64::from_json(get(v, "dropped")?)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(step: u64, name: &str) -> TraceEvent {
        TraceEvent {
            step,
            wall_ns: 0,
            kind: TraceKind::IcMiss,
            name: name.into(),
            detail: String::new(),
        }
    }

    #[test]
    fn ring_drops_oldest() {
        let rec = TraceRecorder::new(TraceConfig {
            capacity: 3,
            deterministic: true,
            profile: false,
        });
        for i in 0..5 {
            rec.record_at(i, TraceKind::IcMiss, &format!("e{i}"), "");
        }
        let rep = rec.report();
        assert_eq!(rep.dropped, 2);
        let names: Vec<&str> = rep.events.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names, vec!["e2", "e3", "e4"]);
    }

    #[test]
    fn capacity_zero_clamps_to_one() {
        let rec = TraceRecorder::new(TraceConfig {
            capacity: 0,
            deterministic: true,
            profile: false,
        });
        rec.record(TraceKind::SpanBegin, "a", "");
        rec.record(TraceKind::SpanEnd, "a", "");
        let rep = rec.report();
        assert_eq!(rep.events.len(), 1);
        assert_eq!(rep.dropped, 1);
    }

    #[test]
    fn deterministic_mode_zeroes_wall_clock() {
        let rec = TraceRecorder::new(TraceConfig::deterministic());
        rec.record_at(7, TraceKind::BudgetTrip, "steps", "");
        let rep = rec.report();
        assert_eq!(rep.events[0].wall_ns, 0);
        assert_eq!(rep.events[0].step, 7);
        // The clock advanced; a follow-up pipeline event carries it.
        rec.record(TraceKind::SpanEnd, "approx-interp", "");
        assert_eq!(rec.report().events[1].step, 7);
    }

    #[test]
    fn merged_is_stable_by_step() {
        let a = TraceReport {
            events: vec![ev(1, "a1"), ev(5, "a5")],
            dropped: 1,
        };
        let b = TraceReport {
            events: vec![ev(1, "b1"), ev(3, "b3")],
            dropped: 2,
        };
        let m = TraceReport::merged(&[a, b]);
        let names: Vec<&str> = m.events.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names, vec!["a1", "b1", "b3", "a5"]);
        assert_eq!(m.dropped, 3);
    }

    #[test]
    fn json_roundtrip() {
        let rep = TraceReport {
            events: vec![
                TraceEvent {
                    step: 12,
                    wall_ns: 345,
                    kind: TraceKind::VmBail,
                    name: "hot@index.js:3".into(),
                    detail: "with-statement".into(),
                },
                ev(99, "k"),
            ],
            dropped: 4,
        };
        let back = TraceReport::from_json(&Json::parse(&rep.to_json().to_string()).unwrap());
        assert_eq!(back.unwrap(), rep);
    }

    #[test]
    fn kind_keys_roundtrip() {
        for k in TraceKind::all() {
            assert_eq!(TraceKind::from_key(k.key()), Some(*k));
        }
        assert_eq!(TraceKind::from_key("nope"), None);
    }

    #[test]
    fn chrome_trace_shape() {
        let rep = TraceReport {
            events: vec![
                TraceEvent {
                    step: 1,
                    wall_ns: 0,
                    kind: TraceKind::SpanBegin,
                    name: "pipeline".into(),
                    detail: String::new(),
                },
                TraceEvent {
                    step: 2,
                    wall_ns: 0,
                    kind: TraceKind::IcMiss,
                    name: "f:x#0".into(),
                    detail: "cold".into(),
                },
                TraceEvent {
                    step: 3,
                    wall_ns: 0,
                    kind: TraceKind::SpanEnd,
                    name: "pipeline".into(),
                    detail: String::new(),
                },
            ],
            dropped: 0,
        };
        let doc = rep.to_chrome_trace();
        let evs = match doc.get("traceEvents") {
            Some(Json::Arr(a)) => a,
            other => panic!("traceEvents not an array: {other:?}"),
        };
        assert_eq!(evs.len(), 3);
        let phs: Vec<String> = evs
            .iter()
            .map(|e| String::from_json(e.get("ph").unwrap()).unwrap())
            .collect();
        assert_eq!(phs, vec!["B", "i", "E"]);
        // Deterministic events use the step index as ts.
        assert_eq!(evs[1].get("ts"), Some(&Json::Num(2.0)));
    }

    #[test]
    fn absorb_preserves_stamps_and_counts_drops() {
        let parent = TraceRecorder::new(TraceConfig::deterministic());
        let child = TraceReport {
            events: vec![ev(41, "child")],
            dropped: 6,
        };
        parent.record_at(40, TraceKind::SpanBegin, "corpus", "");
        parent.absorb(&child);
        let rep = parent.report();
        assert_eq!(rep.events[1].step, 41);
        assert_eq!(rep.dropped, 6);
    }
}
