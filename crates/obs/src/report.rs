//! The serializable snapshot: [`ObsReport`] and its records, with full
//! JSON round-trip support via `aji-support`.

use crate::trace::TraceReport;
use aji_support::{FromJson, Json, JsonError, ToJson};

/// Aggregated timing of one span path (e.g. `"pipeline/baseline-pta/solve"`).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SpanRecord {
    /// `/`-joined path from the outermost span to this one.
    pub path: String,
    /// Number of times the span closed.
    pub count: u64,
    /// Total wall-clock nanoseconds across all closures.
    pub total_ns: u64,
}

impl SpanRecord {
    /// The span's own name (last path segment).
    #[must_use]
    pub fn name(&self) -> &str {
        self.path.rsplit('/').next().unwrap_or(&self.path)
    }

    /// Nesting depth (0 for a root span).
    #[must_use]
    pub fn depth(&self) -> usize {
        self.path.matches('/').count()
    }

    /// Total time in seconds.
    #[must_use]
    pub fn seconds(&self) -> f64 {
        self.total_ns as f64 / 1e9
    }
}

/// Final value of one named counter.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CounterRecord {
    /// Counter name (e.g. `"interp.steps"`).
    pub name: String,
    /// Accumulated value.
    pub value: u64,
}

/// Final value of one named gauge (peak semantics: the registry keeps the
/// maximum value recorded, and [`Registry::absorb`](crate::Registry::absorb)
/// merges by maximum).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct GaugeRecord {
    /// Gauge name (e.g. `"process.peak_rss_kb"`).
    pub name: String,
    /// Peak value recorded.
    pub value: u64,
}

/// Snapshot of one bucketed histogram.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HistogramRecord {
    /// Histogram name.
    pub name: String,
    /// Number of recorded values.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
    /// Sparse power-of-two buckets: `(index, count)` where index `i > 0`
    /// covers values in `[2^(i-1), 2^i)` and index 0 is the value 0.
    pub buckets: Vec<(u32, u64)>,
}

impl HistogramRecord {
    /// Mean of the recorded values (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Upper bound (exclusive) of the bucket containing the p-th
    /// percentile value, `p` in `[0, 100]` — a coarse quantile good enough
    /// for profiles.
    #[must_use]
    pub fn percentile_bound(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (p / 100.0 * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (idx, n) in &self.buckets {
            seen += n;
            if seen >= rank {
                return if *idx == 0 { 0 } else { 1u64 << idx };
            }
        }
        u64::MAX
    }
}

/// A full observability snapshot: every span path, counter and histogram a
/// [`Registry`](crate::Registry) collected, in deterministic sorted order.
///
/// This is the schema persisted by `aji-report --json` (and embedded in
/// `BenchmarkReport` JSON under the `"obs"` key).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ObsReport {
    /// Span timings, sorted by path.
    pub spans: Vec<SpanRecord>,
    /// Counters, sorted by name.
    pub counters: Vec<CounterRecord>,
    /// Histograms, sorted by name.
    pub histograms: Vec<HistogramRecord>,
    /// Gauges (peak values), sorted by name. Serialized only when
    /// non-empty, so reports without gauges keep their PR 3 byte layout.
    pub gauges: Vec<GaugeRecord>,
    /// Flight-recorder snapshot, present when the registry had a recorder
    /// installed. Serialized only when present.
    pub trace: Option<TraceReport>,
}

impl ObsReport {
    /// Value of the named counter, if recorded.
    #[must_use]
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.value)
    }

    /// Value of the named gauge, if recorded.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Option<u64> {
        self.gauges.iter().find(|g| g.name == name).map(|g| g.value)
    }

    /// The span record whose path ends with `name` (matching a whole
    /// segment), if any — convenient when the enclosing path is not known.
    #[must_use]
    pub fn span_named(&self, name: &str) -> Option<&SpanRecord> {
        self.spans.iter().find(|s| s.name() == name)
    }

    /// Total time of the root spans (depth 0) in seconds.
    #[must_use]
    pub fn root_seconds(&self) -> f64 {
        self.spans
            .iter()
            .filter(|s| s.depth() == 0)
            .map(SpanRecord::seconds)
            .sum()
    }

    /// Serializes to a compact JSON string.
    #[must_use]
    pub fn to_json_string(&self) -> String {
        self.to_json().to_string()
    }

    /// Parses a report from a JSON string.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] when the text is not valid JSON or does not
    /// have the report shape.
    pub fn from_json_str(s: &str) -> Result<ObsReport, JsonError> {
        ObsReport::from_json(&Json::parse(s)?)
    }
}

fn get<'j>(v: &'j Json, key: &str) -> Result<&'j Json, JsonError> {
    v.get(key)
        .ok_or_else(|| JsonError::shape(format!("missing field '{key}'")))
}

impl ToJson for SpanRecord {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("path", self.path.to_json()),
            ("count", self.count.to_json()),
            ("total_ns", self.total_ns.to_json()),
        ])
    }
}

impl FromJson for SpanRecord {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(SpanRecord {
            path: String::from_json(get(v, "path")?)?,
            count: u64::from_json(get(v, "count")?)?,
            total_ns: u64::from_json(get(v, "total_ns")?)?,
        })
    }
}

impl ToJson for CounterRecord {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("name", self.name.to_json()),
            ("value", self.value.to_json()),
        ])
    }
}

impl FromJson for CounterRecord {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(CounterRecord {
            name: String::from_json(get(v, "name")?)?,
            value: u64::from_json(get(v, "value")?)?,
        })
    }
}

impl ToJson for HistogramRecord {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("name", self.name.to_json()),
            ("count", self.count.to_json()),
            ("sum", self.sum.to_json()),
            ("buckets", self.buckets.to_json()),
        ])
    }
}

impl FromJson for HistogramRecord {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(HistogramRecord {
            name: String::from_json(get(v, "name")?)?,
            count: u64::from_json(get(v, "count")?)?,
            sum: u64::from_json(get(v, "sum")?)?,
            buckets: Vec::from_json(get(v, "buckets")?)?,
        })
    }
}

impl ToJson for GaugeRecord {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("name", self.name.to_json()),
            ("value", self.value.to_json()),
        ])
    }
}

impl FromJson for GaugeRecord {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(GaugeRecord {
            name: String::from_json(get(v, "name")?)?,
            value: u64::from_json(get(v, "value")?)?,
        })
    }
}

impl ToJson for ObsReport {
    fn to_json(&self) -> Json {
        let mut fields = vec![
            ("spans", self.spans.to_json()),
            ("counters", self.counters.to_json()),
            ("histograms", self.histograms.to_json()),
        ];
        // Both additions are omitted when absent so pre-flight-recorder
        // reports (and registries without gauges or a recorder) keep the
        // exact JSON bytes older tooling pins.
        if !self.gauges.is_empty() {
            fields.push(("gauges", self.gauges.to_json()));
        }
        if let Some(trace) = &self.trace {
            fields.push(("trace", trace.to_json()));
        }
        Json::obj(fields)
    }
}

impl FromJson for ObsReport {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(ObsReport {
            spans: Vec::from_json(get(v, "spans")?)?,
            counters: Vec::from_json(get(v, "counters")?)?,
            histograms: Vec::from_json(get(v, "histograms")?)?,
            gauges: match v.get("gauges") {
                Some(g) => Vec::from_json(g)?,
                None => Vec::new(),
            },
            trace: match v.get("trace") {
                Some(t) => Some(TraceReport::from_json(t)?),
                None => None,
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ObsReport {
        ObsReport {
            spans: vec![
                SpanRecord {
                    path: "pipeline".into(),
                    count: 1,
                    total_ns: 5_000_000,
                },
                SpanRecord {
                    path: "pipeline/solve".into(),
                    count: 2,
                    total_ns: 3_000_000,
                },
            ],
            counters: vec![CounterRecord {
                name: "interp.steps".into(),
                value: 1234,
            }],
            histograms: vec![HistogramRecord {
                name: "approx.hints_per_item".into(),
                count: 3,
                sum: 10,
                buckets: vec![(0, 1), (3, 2)],
            }],
            gauges: Vec::new(),
            trace: None,
        }
    }

    #[test]
    fn json_roundtrip() {
        let r = sample();
        let back = ObsReport::from_json_str(&r.to_json_string()).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn empty_gauges_and_trace_are_omitted_from_json() {
        let text = sample().to_json_string();
        assert!(!text.contains("\"gauges\""));
        assert!(!text.contains("\"trace\""));
    }

    #[test]
    fn gauges_and_trace_roundtrip_when_present() {
        use crate::trace::{TraceEvent, TraceKind, TraceReport};
        let mut r = sample();
        r.gauges = vec![GaugeRecord {
            name: "process.peak_rss_kb".into(),
            value: 4096,
        }];
        r.trace = Some(TraceReport {
            events: vec![TraceEvent {
                step: 3,
                wall_ns: 0,
                kind: TraceKind::HintApply,
                name: "dpw".into(),
                detail: "prop".into(),
            }],
            dropped: 0,
        });
        let back = ObsReport::from_json_str(&r.to_json_string()).unwrap();
        assert_eq!(back, r);
        assert_eq!(back.gauge("process.peak_rss_kb"), Some(4096));
        assert_eq!(back.gauge("missing"), None);
    }

    #[test]
    fn accessors() {
        let r = sample();
        assert_eq!(r.counter("interp.steps"), Some(1234));
        assert_eq!(r.counter("missing"), None);
        let s = r.span_named("solve").unwrap();
        assert_eq!(s.depth(), 1);
        assert_eq!(s.name(), "solve");
        assert!((r.root_seconds() - 0.005).abs() < 1e-12);
    }

    #[test]
    fn histogram_stats() {
        let h = HistogramRecord {
            name: "h".into(),
            count: 4,
            sum: 20,
            buckets: vec![(0, 1), (1, 1), (4, 2)],
        };
        assert!((h.mean() - 5.0).abs() < 1e-12);
        assert_eq!(h.percentile_bound(25.0), 0);
        assert_eq!(h.percentile_bound(50.0), 2);
        assert_eq!(h.percentile_bound(100.0), 16);
        assert_eq!(HistogramRecord::default().percentile_bound(50.0), 0);
    }

    #[test]
    fn shape_errors_are_reported() {
        assert!(ObsReport::from_json_str("{}").is_err());
        assert!(ObsReport::from_json_str("[1]").is_err());
        assert!(ObsReport::from_json_str("not json").is_err());
    }
}
