//! Text rendering of an [`ObsReport`]: an indented span tree with
//! per-phase percentages, the top-N counters, hot-function and IC-miss
//! tables, gauges, and histogram summaries.

use crate::report::{ObsReport, SpanRecord};
use std::collections::BTreeMap;
use std::fmt::Write;

/// Options for [`render_text`].
#[derive(Debug, Clone, Copy)]
pub struct RenderOptions {
    /// How many counters to print (largest first).
    pub top_counters: usize,
    /// How many rows of the hot-function and IC-miss-site tables to print.
    pub top_functions: usize,
}

impl Default for RenderOptions {
    fn default() -> Self {
        RenderOptions {
            top_counters: 20,
            top_functions: 10,
        }
    }
}

/// Per-function metrics flushed by the interpreter's profiler, keyed by
/// `profile.fn.<metric>.<function-key>` counters.
const FN_METRICS: [&str; 5] = ["steps", "calls", "ic_hits", "ic_misses", "bails"];

/// Counter-name prefix of the step-attributed hot-function profile.
const FN_PREFIX: &str = "profile.fn.";
/// Counter-name prefix of per-site IC-miss attribution.
const IC_SITE_PREFIX: &str = "interp.ic_miss_site.";

fn is_table_counter(name: &str) -> bool {
    name.starts_with(FN_PREFIX) || name.starts_with(IC_SITE_PREFIX)
}

/// Groups `profile.fn.<metric>.<key>` counters into per-function rows of
/// `[steps, calls, ic_hits, ic_misses, bails]`.
fn hot_functions(report: &ObsReport) -> Vec<(String, [u64; 5])> {
    let mut rows: BTreeMap<String, [u64; 5]> = BTreeMap::new();
    for c in &report.counters {
        let Some(rest) = c.name.strip_prefix(FN_PREFIX) else {
            continue;
        };
        let Some((metric, key)) = rest.split_once('.') else {
            continue;
        };
        let Some(idx) = FN_METRICS.iter().position(|m| *m == metric) else {
            continue;
        };
        rows.entry(key.to_string()).or_default()[idx] += c.value;
    }
    let mut rows: Vec<_> = rows.into_iter().collect();
    rows.sort_by(|a, b| b.1[0].cmp(&a.1[0]).then_with(|| a.0.cmp(&b.0)));
    rows
}

/// Renders a report as human-readable text: the span tree (each node with
/// total time, percentage of its root, and close count), then the top-N
/// counters, then histogram summaries. Deterministic for a given report.
#[must_use]
pub fn render_text(report: &ObsReport, opts: &RenderOptions) -> String {
    let mut out = String::new();
    out.push_str("spans (wall clock):\n");
    if report.spans.is_empty() {
        out.push_str("  (none recorded)\n");
    } else {
        let roots = children_of(report, "");
        for root in &roots {
            render_span(&mut out, report, root, root.total_ns.max(1), 0);
        }
    }

    let hot = hot_functions(report);
    if !hot.is_empty() {
        out.push_str("\nhot functions (by interpreter steps):\n");
        let width = hot
            .iter()
            .take(opts.top_functions)
            .map(|(k, _)| k.len())
            .max()
            .unwrap_or(0)
            .max(8);
        let _ = writeln!(
            out,
            "  {:<width$}  {:>14} {:>10} {:>12} {:>10} {:>6}",
            "function", "steps", "calls", "ic_hits", "ic_miss", "bails"
        );
        for (key, m) in hot.iter().take(opts.top_functions) {
            let _ = writeln!(
                out,
                "  {:<width$}  {:>14} {:>10} {:>12} {:>10} {:>6}",
                key,
                group_digits(m[0]),
                group_digits(m[1]),
                group_digits(m[2]),
                group_digits(m[3]),
                group_digits(m[4]),
            );
        }
    }

    // Generic counters, excluding the per-function / per-site families
    // rendered as tables above and below.
    let generic: Vec<_> = report
        .counters
        .iter()
        .filter(|c| !is_table_counter(&c.name))
        .collect();
    out.push_str(&format!(
        "\ntop counters ({} of {}):\n",
        opts.top_counters.min(generic.len()),
        generic.len()
    ));
    if generic.is_empty() {
        out.push_str("  (none recorded)\n");
    } else {
        let mut counters = generic;
        counters.sort_by(|a, b| b.value.cmp(&a.value).then_with(|| a.name.cmp(&b.name)));
        let width = counters
            .iter()
            .take(opts.top_counters)
            .map(|c| c.name.len())
            .max()
            .unwrap_or(0);
        for c in counters.iter().take(opts.top_counters) {
            let _ = writeln!(out, "  {:<width$}  {:>12}", c.name, group_digits(c.value));
        }
    }

    let mut sites: Vec<_> = report
        .counters
        .iter()
        .filter_map(|c| c.name.strip_prefix(IC_SITE_PREFIX).map(|s| (s, c.value)))
        .collect();
    if !sites.is_empty() {
        sites.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(b.0)));
        out.push_str("\nic-miss sites:\n");
        for (site, n) in sites.iter().take(opts.top_functions) {
            let _ = writeln!(out, "  {:<40}  {:>8}", site, group_digits(*n));
        }
    }

    if !report.gauges.is_empty() {
        out.push_str("\ngauges (peaks):\n");
        let width = report.gauges.iter().map(|g| g.name.len()).max().unwrap_or(0);
        for g in &report.gauges {
            let _ = writeln!(out, "  {:<width$}  {:>12}", g.name, group_digits(g.value));
        }
    }

    if !report.histograms.is_empty() {
        out.push_str("\nhistograms:\n");
        for h in &report.histograms {
            let _ = writeln!(
                out,
                "  {}: n={} mean={:.1} p50<{} p95<{}",
                h.name,
                h.count,
                h.mean(),
                group_digits(h.percentile_bound(50.0)),
                group_digits(h.percentile_bound(95.0)),
            );
        }
    }

    if let Some(trace) = &report.trace {
        let _ = writeln!(
            out,
            "\ntrace: {} events recorded, {} dropped (export with --chrome-trace)",
            group_digits(trace.events.len() as u64),
            group_digits(trace.dropped),
        );
    }
    out
}

/// Direct children of the span at `path` (`""` for roots), largest total
/// time first (name as tie-break) so the hot phase reads first.
fn children_of<'r>(report: &'r ObsReport, path: &str) -> Vec<&'r SpanRecord> {
    let mut out: Vec<&SpanRecord> = report
        .spans
        .iter()
        .filter(|s| {
            if path.is_empty() {
                // An empty path (possible in hand-written JSON; the
                // registry never records one) must not be a root: its
                // child query would be the root query again, recursing
                // forever.
                s.depth() == 0 && !s.path.is_empty()
            } else {
                s.path.len() > path.len() + 1
                    && s.path.starts_with(path)
                    && s.path.as_bytes()[path.len()] == b'/'
                    && !s.path[path.len() + 1..].contains('/')
            }
        })
        .collect();
    out.sort_by(|a, b| {
        b.total_ns
            .cmp(&a.total_ns)
            .then_with(|| a.path.cmp(&b.path))
    });
    out
}

fn render_span(out: &mut String, report: &ObsReport, span: &SpanRecord, root_ns: u64, depth: usize) {
    let pct = 100.0 * span.total_ns as f64 / root_ns as f64;
    let _ = writeln!(
        out,
        "  {:indent$}{:<w$} {:>10}  {:>5.1}%  x{}",
        "",
        span.name(),
        fmt_ns(span.total_ns),
        pct,
        span.count,
        indent = depth * 2,
        w = 28usize.saturating_sub(depth * 2),
    );
    for child in children_of(report, &span.path) {
        render_span(out, report, child, root_ns, depth + 1);
    }
}

/// Formats nanoseconds with an adaptive unit.
fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.2}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// `1234567` → `"1,234,567"`.
fn group_digits(n: u64) -> String {
    let s = n.to_string();
    let mut out = String::with_capacity(s.len() + s.len() / 3);
    for (i, c) in s.chars().enumerate() {
        if i > 0 && (s.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(c);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::CounterRecord;

    #[test]
    fn formats_units_and_digit_groups() {
        assert_eq!(fmt_ns(17), "17ns");
        assert_eq!(fmt_ns(1_500), "1.50us");
        assert_eq!(fmt_ns(2_500_000), "2.50ms");
        assert_eq!(fmt_ns(3_210_000_000), "3.21s");
        assert_eq!(group_digits(0), "0");
        assert_eq!(group_digits(999), "999");
        assert_eq!(group_digits(1_000), "1,000");
        assert_eq!(group_digits(1_234_567), "1,234,567");
    }

    #[test]
    fn empty_report_renders() {
        let text = render_text(&ObsReport::default(), &RenderOptions::default());
        assert!(text.contains("(none recorded)"));
    }

    #[test]
    fn children_sorted_by_time() {
        let report = ObsReport {
            spans: vec![
                SpanRecord {
                    path: "root".into(),
                    count: 1,
                    total_ns: 100,
                },
                SpanRecord {
                    path: "root/fast".into(),
                    count: 1,
                    total_ns: 10,
                },
                SpanRecord {
                    path: "root/slow".into(),
                    count: 1,
                    total_ns: 80,
                },
            ],
            counters: vec![CounterRecord {
                name: "c".into(),
                value: 1,
            }],
            ..ObsReport::default()
        };
        let text = render_text(&report, &RenderOptions::default());
        let slow = text.find("slow").unwrap();
        let fast = text.find("fast").unwrap();
        assert!(slow < fast, "hot child first:\n{text}");
    }

    #[test]
    fn profile_counters_render_as_table_not_counters() {
        let mk = |name: &str, value: u64| CounterRecord {
            name: name.into(),
            value,
        };
        let report = ObsReport {
            counters: vec![
                mk("profile.fn.steps.hot@index.js:3", 900),
                mk("profile.fn.steps.cold@index.js:9", 10),
                mk("profile.fn.calls.hot@index.js:3", 25),
                mk("profile.fn.ic_misses.hot@index.js:3", 3),
                mk("interp.ic_miss_site.hot@index.js:3:x#0", 3),
                mk("interp.steps", 910),
            ],
            ..ObsReport::default()
        };
        let text = render_text(&report, &RenderOptions::default());
        assert!(text.contains("hot functions"));
        assert!(text.contains("ic-miss sites"));
        // The table families are excluded from the generic counter list.
        assert!(text.contains("top counters (1 of 1)"), "{text}");
        // Hottest function first.
        let hot = text.find("hot@index.js:3").unwrap();
        let cold = text.find("cold@index.js:9").unwrap();
        assert!(hot < cold);
    }

    #[test]
    fn gauges_and_trace_sections_render() {
        use crate::report::GaugeRecord;
        use crate::trace::TraceReport;
        let report = ObsReport {
            gauges: vec![GaugeRecord {
                name: "process.peak_rss_kb".into(),
                value: 12_345,
            }],
            trace: Some(TraceReport::default()),
            ..ObsReport::default()
        };
        let text = render_text(&report, &RenderOptions::default());
        assert!(text.contains("gauges (peaks):"));
        assert!(text.contains("12,345"));
        assert!(text.contains("trace: 0 events recorded, 0 dropped"));
    }
}
