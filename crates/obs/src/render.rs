//! Text rendering of an [`ObsReport`]: an indented span tree with
//! per-phase percentages, the top-N counters, and histogram summaries.

use crate::report::{ObsReport, SpanRecord};
use std::fmt::Write;

/// Options for [`render_text`].
#[derive(Debug, Clone, Copy)]
pub struct RenderOptions {
    /// How many counters to print (largest first).
    pub top_counters: usize,
}

impl Default for RenderOptions {
    fn default() -> Self {
        RenderOptions { top_counters: 20 }
    }
}

/// Renders a report as human-readable text: the span tree (each node with
/// total time, percentage of its root, and close count), then the top-N
/// counters, then histogram summaries. Deterministic for a given report.
#[must_use]
pub fn render_text(report: &ObsReport, opts: &RenderOptions) -> String {
    let mut out = String::new();
    out.push_str("spans (wall clock):\n");
    if report.spans.is_empty() {
        out.push_str("  (none recorded)\n");
    } else {
        let roots = children_of(report, "");
        for root in &roots {
            render_span(&mut out, report, root, root.total_ns.max(1), 0);
        }
    }

    out.push_str(&format!(
        "\ntop counters ({} of {}):\n",
        opts.top_counters.min(report.counters.len()),
        report.counters.len()
    ));
    if report.counters.is_empty() {
        out.push_str("  (none recorded)\n");
    } else {
        let mut counters: Vec<_> = report.counters.iter().collect();
        counters.sort_by(|a, b| b.value.cmp(&a.value).then_with(|| a.name.cmp(&b.name)));
        let width = counters
            .iter()
            .take(opts.top_counters)
            .map(|c| c.name.len())
            .max()
            .unwrap_or(0);
        for c in counters.iter().take(opts.top_counters) {
            let _ = writeln!(out, "  {:<width$}  {:>12}", c.name, group_digits(c.value));
        }
    }

    if !report.histograms.is_empty() {
        out.push_str("\nhistograms:\n");
        for h in &report.histograms {
            let _ = writeln!(
                out,
                "  {}: n={} mean={:.1} p50<{} p95<{}",
                h.name,
                h.count,
                h.mean(),
                group_digits(h.percentile_bound(50.0)),
                group_digits(h.percentile_bound(95.0)),
            );
        }
    }
    out
}

/// Direct children of the span at `path` (`""` for roots), largest total
/// time first (name as tie-break) so the hot phase reads first.
fn children_of<'r>(report: &'r ObsReport, path: &str) -> Vec<&'r SpanRecord> {
    let mut out: Vec<&SpanRecord> = report
        .spans
        .iter()
        .filter(|s| {
            if path.is_empty() {
                // An empty path (possible in hand-written JSON; the
                // registry never records one) must not be a root: its
                // child query would be the root query again, recursing
                // forever.
                s.depth() == 0 && !s.path.is_empty()
            } else {
                s.path.len() > path.len() + 1
                    && s.path.starts_with(path)
                    && s.path.as_bytes()[path.len()] == b'/'
                    && !s.path[path.len() + 1..].contains('/')
            }
        })
        .collect();
    out.sort_by(|a, b| {
        b.total_ns
            .cmp(&a.total_ns)
            .then_with(|| a.path.cmp(&b.path))
    });
    out
}

fn render_span(out: &mut String, report: &ObsReport, span: &SpanRecord, root_ns: u64, depth: usize) {
    let pct = 100.0 * span.total_ns as f64 / root_ns as f64;
    let _ = writeln!(
        out,
        "  {:indent$}{:<w$} {:>10}  {:>5.1}%  x{}",
        "",
        span.name(),
        fmt_ns(span.total_ns),
        pct,
        span.count,
        indent = depth * 2,
        w = 28usize.saturating_sub(depth * 2),
    );
    for child in children_of(report, &span.path) {
        render_span(out, report, child, root_ns, depth + 1);
    }
}

/// Formats nanoseconds with an adaptive unit.
fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.2}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// `1234567` → `"1,234,567"`.
fn group_digits(n: u64) -> String {
    let s = n.to_string();
    let mut out = String::with_capacity(s.len() + s.len() / 3);
    for (i, c) in s.chars().enumerate() {
        if i > 0 && (s.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(c);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::CounterRecord;

    #[test]
    fn formats_units_and_digit_groups() {
        assert_eq!(fmt_ns(17), "17ns");
        assert_eq!(fmt_ns(1_500), "1.50us");
        assert_eq!(fmt_ns(2_500_000), "2.50ms");
        assert_eq!(fmt_ns(3_210_000_000), "3.21s");
        assert_eq!(group_digits(0), "0");
        assert_eq!(group_digits(999), "999");
        assert_eq!(group_digits(1_000), "1,000");
        assert_eq!(group_digits(1_234_567), "1,234,567");
    }

    #[test]
    fn empty_report_renders() {
        let text = render_text(&ObsReport::default(), &RenderOptions::default());
        assert!(text.contains("(none recorded)"));
    }

    #[test]
    fn children_sorted_by_time() {
        let report = ObsReport {
            spans: vec![
                SpanRecord {
                    path: "root".into(),
                    count: 1,
                    total_ns: 100,
                },
                SpanRecord {
                    path: "root/fast".into(),
                    count: 1,
                    total_ns: 10,
                },
                SpanRecord {
                    path: "root/slow".into(),
                    count: 1,
                    total_ns: 80,
                },
            ],
            counters: vec![CounterRecord {
                name: "c".into(),
                value: 1,
            }],
            histograms: vec![],
        };
        let text = render_text(&report, &RenderOptions::default());
        let slow = text.find("slow").unwrap();
        let fast = text.find("fast").unwrap();
        assert!(slow < fast, "hot child first:\n{text}");
    }
}
