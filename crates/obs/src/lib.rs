//! Hermetic observability for the *aji* analysis pipeline.
//!
//! The paper's evaluation (§5) is entirely about *measuring* the pipeline
//! — hint counts, call-graph deltas, and analysis time budgets — so every
//! layer of this reproduction reports where its time and work go through
//! this crate: hierarchical [spans](span) with wall-clock timing, named
//! [counters](counter), and bucketed [histograms](histogram_record), collected
//! into a thread-safe [`Registry`] and snapshotted as a serializable
//! [`ObsReport`].
//!
//! # Switching it on
//!
//! Observability is **off by default** and free when off (recording sites
//! reduce to a relaxed atomic load). It turns on when either
//!
//! * the `AJI_OBS` environment variable is set to `1`, `true` or `on`
//!   (events then collect into the process-global registry), or
//! * a [`Registry`] is installed for a scope with [`scoped`] (events on
//!   the current thread then collect into that registry — this is what
//!   `aji::run_benchmark` uses to attach a per-run report, and what tests
//!   use so parallel tests never share state).
//!
//! # Recording
//!
//! ```
//! use aji_obs::{scoped, Registry};
//! use std::sync::Arc;
//!
//! let reg = Arc::new(Registry::new());
//! scoped(&reg, || {
//!     let _outer = aji_obs::span("pipeline");
//!     {
//!         let _inner = aji_obs::span("solve");
//!         aji_obs::counter_add("solver.propagations", 42);
//!         aji_obs::histogram_record("solver.round", 17);
//!     }
//! });
//! let report = reg.report();
//! assert_eq!(report.counter("solver.propagations"), Some(42));
//! assert!(report.spans.iter().any(|s| s.path == "pipeline/solve"));
//! ```
//!
//! Hot paths that fire per event (interpreter steps, solver propagations)
//! hold a [`Counter`] handle — a cached `Arc<AtomicU64>` obtained once via
//! [`counter`] — so recording is a single relaxed `fetch_add` with no map
//! lookup and no lock.
//!
//! # Reporting
//!
//! [`Registry::report`] snapshots everything into an [`ObsReport`], which
//! round-trips through `aji-support` JSON ([`ObsReport::to_json_string`] /
//! [`ObsReport::from_json_str`]) and renders as an indented span tree with
//! per-phase percentages and top-N counters via [`render_text`] — the
//! format the `aji-report` binary prints.

//! # The flight recorder
//!
//! Beyond aggregates, a registry can carry a [`TraceRecorder`] — a
//! fixed-capacity ring of structured [`TraceEvent`]s (span begin/end, VM
//! compile/bail, IC miss, budget trip, oracle finding, hint application),
//! each stamped with a wall-clock offset *and* the interpreter step index.
//! In [`TraceConfig::deterministic`] mode the wall clock is zeroed, making
//! event streams byte-identical across thread counts and reruns; see the
//! [`trace`] module docs for the clock semantics. Registries also carry
//! [gauges](gauge_max) (peak-value metrics such as
//! [peak RSS](record_peak_rss), merged by maximum on
//! [`Registry::absorb`]).

#![warn(missing_docs)]

mod registry;
mod render;
mod report;
pub mod trace;

pub use registry::{
    counter, counter_add, current_registry, enabled, force_enable, gauge_max, histogram_record,
    record_peak_rss, scoped, span, trace_event, trace_recorder, Counter, Registry, SpanGuard,
};
pub use render::{render_text, RenderOptions};
pub use report::{CounterRecord, GaugeRecord, HistogramRecord, ObsReport, SpanRecord};
pub use trace::{TraceConfig, TraceEvent, TraceKind, TraceRecorder, TraceReport};
