#!/usr/bin/env sh
# Verifies the workspace builds and tests entirely offline — the
# guarantee the hermetic-build policy (see ROADMAP.md) makes. Run from
# anywhere; it cd's to the repo root. A clean `target/` is the strongest
# check: `rm -rf target` first to prove no cached registry artifact is
# being relied on.
set -eu
cd "$(dirname "$0")/.."

echo "==> cargo build --workspace --release --offline"
cargo build --workspace --release --offline

echo "==> cargo test -q --offline"
cargo test -q --offline

echo "==> cargo clippy --offline --all-targets -- -D warnings"
cargo clippy --offline --all-targets -- -D warnings

echo "==> RUSTDOCFLAGS='-D warnings' cargo doc --workspace --no-deps --offline"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --offline

echo "==> cargo test -q --offline --test corpus_determinism"
cargo test -q --offline --test corpus_determinism

echo "==> aji-oracle --seed 1 --cases 50 (smoke: a healthy build fuzzes clean)"
./target/release/aji-oracle --seed 1 --cases 50

echo "==> aji-oracle determinism (same seed, threads 1 vs 4, byte-identical)"
./target/release/aji-oracle --seed 1 --cases 50 --json --threads 1 > target/oracle-t1.json
./target/release/aji-oracle --seed 1 --cases 50 --json --threads 4 > target/oracle-t4.json
cmp target/oracle-t1.json target/oracle-t4.json
./target/release/aji-oracle --seed 1 --cases 50 --json --threads 1 > target/oracle-rerun.json
cmp target/oracle-t1.json target/oracle-rerun.json

echo "==> cargo test -q --offline --test bytecode_differential (VM vs tree-walker)"
cargo test -q --offline --test bytecode_differential

echo "==> vm-throughput metrics determinism (two runs, byte-identical)"
./target/release/vm-throughput --metrics-json > target/vm-metrics-1.json
./target/release/vm-throughput --metrics-json > target/vm-metrics-2.json
cmp target/vm-metrics-1.json target/vm-metrics-2.json

echo "==> flight-recorder trace determinism (two deterministic runs, byte-identical)"
./target/release/aji-report --project webframe-app --dynamic --deterministic \
    --chrome-trace target/trace-1.json > /dev/null
./target/release/aji-report --project webframe-app --dynamic --deterministic \
    --chrome-trace target/trace-2.json > /dev/null
cmp target/trace-1.json target/trace-2.json

echo "==> cargo test -q --offline --test trace_determinism (threads 1 vs 4 + recorder-off invariance)"
cargo test -q --offline --test trace_determinism

echo "==> aji-report --diff perf gate (fresh metrics vs committed BENCH_pr7_bytecode.json)"
./target/release/aji-report --diff BENCH_pr7_bytecode.json target/vm-metrics-1.json

echo "==> aji-report --diff detects an injected counter regression (must exit non-zero)"
sed 's/"ic_hits":17496948/"ic_hits":17496947/' target/vm-metrics-1.json > target/vm-metrics-tampered.json
cmp -s target/vm-metrics-1.json target/vm-metrics-tampered.json && {
    echo "error: tamper sed did not change ic_hits"; exit 1; }
if ./target/release/aji-report --diff BENCH_pr7_bytecode.json target/vm-metrics-tampered.json; then
    echo "error: --diff passed a tampered counter"; exit 1
fi

echo "==> aji-serve daemon smoke (warm = cold byte-identical, invalidate, clean shutdown)"
SOCK=target/aji-serve-smoke.sock
STORE=target/aji-serve-smoke-store.json
rm -f "$SOCK" "$STORE"
./target/release/aji-serve --socket "$SOCK" --store "$STORE" &
SERVE_PID=$!
i=0
while [ ! -S "$SOCK" ]; do
    i=$((i + 1))
    [ "$i" -le 100 ] || { echo "error: daemon socket never appeared"; exit 1; }
    sleep 0.1
done
./target/release/aji-serve --client "$SOCK" --op analyze --name webframe-app > target/serve-cold.json
./target/release/aji-serve --client "$SOCK" --op analyze --name webframe-app > target/serve-warm.json
cmp target/serve-cold.json target/serve-warm.json
./target/release/aji-serve --client "$SOCK" --op invalidate --name webframe-app --path index.js > /dev/null
./target/release/aji-serve --client "$SOCK" --op analyze --name webframe-app > target/serve-after.json
cmp target/serve-cold.json target/serve-after.json
./target/release/aji-serve --client "$SOCK" --op stats > target/serve-stats.json
grep -q '"response_hits":1' target/serve-stats.json || {
    echo "error: expected exactly one response-layer hit"; cat target/serve-stats.json; exit 1; }
grep -q '"response_misses":2' target/serve-stats.json || {
    echo "error: expected two response-layer misses (cold + post-invalidate)"; cat target/serve-stats.json; exit 1; }
grep -q '"invalidations":1' target/serve-stats.json || {
    echo "error: expected one recorded invalidation"; cat target/serve-stats.json; exit 1; }
./target/release/aji-serve --client "$SOCK" --op shutdown > /dev/null
wait "$SERVE_PID"
[ -f "$STORE" ] || { echo "error: shutdown did not persist the hint store"; exit 1; }
[ ! -S "$SOCK" ] || { echo "error: daemon left its socket behind"; exit 1; }

echo "==> serve-bench warm/cold gate (warm >= 3x faster, responses byte-identical)"
./target/release/serve-bench --require-speedup 3 --iters 3

echo "==> aji-report --diff serve gate (fresh serve metrics vs committed BENCH_pr9_serve.json)"
./target/release/serve-bench --json --iters 3 > target/serve-bench.json
./target/release/aji-report --diff BENCH_pr9_serve.json target/serve-bench.json --tolerance 900

echo "==> aji-quant determinism (threads 1 vs 4 + rerun, byte-identical)"
./target/release/aji-quant --json --threads 1 > target/quant-t1.json
./target/release/aji-quant --json --threads 4 > target/quant-t4.json
cmp target/quant-t1.json target/quant-t4.json
./target/release/aji-quant --json --threads 1 > target/quant-rerun.json
cmp target/quant-t1.json target/quant-rerun.json

echo "==> aji-report --diff quant gate (fresh quant report vs committed BENCH_pr10_quant.json)"
./target/release/aji-report --diff BENCH_pr10_quant.json target/quant-t1.json

echo "ok: workspace builds, tests, lints and docs clean with no network access"
