//! The paper's motivating example (Figure 1): an Express-like web
//! framework whose API is assembled by a merge-descriptors mixin and a
//! dynamically built HTTP-verb method table. The baseline analysis misses
//! the `app.get(...)` and `app.listen(...)` call edges; approximate
//! interpretation recovers them.
//!
//! Run with `cargo run --example express_motivating`.

use aji::{run_benchmark, PipelineOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let project = aji_corpus::pattern_projects()
        .into_iter()
        .find(|p| p.name == "webframe-app")
        .expect("webframe pattern project");

    println!("project `{}` — {} modules, {} packages", project.name,
        project.module_count(), project.package_count());
    println!();

    let report = run_benchmark(&project, &PipelineOptions::with_dynamic_cg())?;

    // Locate the interesting call sites in index.js (file 0).
    println!("call sites in the application module (index.js):");
    let src = &project.files[0].src;
    for (loc, targets) in report.extended_call_graph.site_targets.iter() {
        if loc.file.0 != 0 {
            continue;
        }
        let line = src.lines().nth(loc.line as usize - 1).unwrap_or("");
        let baseline_targets = report
            .baseline_call_graph
            .site_targets
            .get(loc)
            .map(|t| t.len())
            .unwrap_or(0);
        println!(
            "  line {:>2}: {:<55} baseline {} callee(s), extended {} callee(s)",
            loc.line,
            line.trim(),
            baseline_targets,
            targets.len()
        );
    }

    println!();
    println!("metrics:");
    println!(
        "  call edges            {:>4} -> {:>4}",
        report.baseline.call_edges, report.extended.call_edges
    );
    println!(
        "  reachable functions   {:>4} -> {:>4}",
        report.baseline.reachable_functions, report.extended.reachable_functions
    );
    if let Some(acc) = &report.accuracy {
        println!(
            "  recall vs dynamic CG  {:>5.1}% -> {:>5.1}%   (paper's motivating case: 40.1% -> 98.0%)",
            acc.baseline.recall_pct(),
            acc.extended.recall_pct()
        );
        println!(
            "  per-call precision    {:>5.1}% -> {:>5.1}%",
            acc.baseline.precision_pct(),
            acc.extended.precision_pct()
        );
    }
    Ok(())
}
