//! Producing a dynamic call graph (the NodeProf stand-in): run a
//! project's test driver under the concrete interpreter with the
//! call-graph tracer, then measure static-analysis recall against it.
//!
//! Run with `cargo run --example dynamic_callgraph`.

use aji::dynamic_call_graph;
use aji_interp::InterpOptions;
use aji_approx::{approximate_interpret, ApproxOptions};
use aji_pta::{analyze, Accuracy, AnalysisOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let project = aji_corpus::pattern_projects()
        .into_iter()
        .find(|p| p.name == "queue-app")
        .expect("task queue project");

    println!(
        "running test driver `{}` under the instrumented interpreter...",
        project.test_driver.clone().unwrap()
    );
    let dyn_edges =
        dynamic_call_graph(&project, &InterpOptions::default()).expect("interpreter");
    println!("dynamic call graph: {} edges", dyn_edges.len());
    for (site, callee) in dyn_edges.iter().take(10) {
        println!(
            "  f{}:{}:{} -> f{}:{}:{}",
            site.file.0, site.line, site.col, callee.file.0, callee.line, callee.col
        );
    }
    if dyn_edges.len() > 10 {
        println!("  ... and {} more", dyn_edges.len() - 10);
    }

    let baseline = analyze(&project, None, &AnalysisOptions::baseline())?;
    let hints = approximate_interpret(&project, &ApproxOptions::default())?.hints;
    let extended = analyze(&project, Some(&hints), &AnalysisOptions::extended())?;

    let acc_b = Accuracy::compare(&baseline.call_graph, &dyn_edges);
    let acc_x = Accuracy::compare(&extended.call_graph, &dyn_edges);
    println!();
    println!(
        "recall:    baseline {:>5.1}%  extended {:>5.1}%",
        acc_b.recall_pct(),
        acc_x.recall_pct()
    );
    println!(
        "precision: baseline {:>5.1}%  extended {:>5.1}%",
        acc_b.precision_pct(),
        acc_x.precision_pct()
    );
    println!("hints used: {}", hints.len());
    Ok(())
}
