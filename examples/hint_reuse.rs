//! §6 "Reusing approximate interpretation results": hints inferred once
//! for a library are reused to analyze an application of that library,
//! without re-running the pre-analysis on the application.
//!
//! Run with `cargo run --example hint_reuse`.

use aji_approx::{approximate_interpret, ApproxOptions};
use aji_ast::Project;
use aji_pta::{analyze, AnalysisOptions, CgMetrics};

const LIBRARY: &str = r#"var api = {};
['connect', 'query', 'close'].forEach(function(op) {
  api[op] = function impl(arg) {
    return op + '(' + arg + ')';
  };
});
module.exports = api;
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Step 1: pre-analyze the library once, on its own.
    let mut lib = Project::new("dbdriver");
    lib.add_file("index.js", "module.exports = require('dbdriver');");
    lib.add_file("node_modules/dbdriver/index.js", LIBRARY);
    let lib_hints = approximate_interpret(&lib, &ApproxOptions::default())?.hints;
    println!(
        "library pre-analysis: {} hints ({} write hints)",
        lib_hints.len(),
        lib_hints.writes.len()
    );

    // Step 2: a *different* application vendors the same library file. Its
    // own code is never touched by approximate interpretation here.
    let mut app = Project::new("report-tool");
    app.add_file(
        "index.js",
        r#"var db = require('dbdriver');
db.connect('postgres://localhost');
var rows = db.query('select 1');
db.close();
"#,
    );
    app.add_file("node_modules/dbdriver/index.js", LIBRARY);

    let baseline = analyze(&app, None, &AnalysisOptions::baseline())?;
    let reused = analyze(&app, Some(&lib_hints), &AnalysisOptions::extended())?;

    let mb = CgMetrics::of(&baseline.call_graph);
    let mr = CgMetrics::of(&reused.call_graph);
    println!();
    println!("application analysis (no pre-analysis of the app itself):");
    println!("  call edges        baseline {:>2}   with reused hints {:>2}", mb.call_edges, mr.call_edges);
    println!(
        "  resolved sites    baseline {:>4.1}%  with reused hints {:>4.1}%",
        mb.resolved_pct(),
        mr.resolved_pct()
    );
    println!();
    println!("calls into the library resolved purely from the library's own hints:");
    for (site, targets) in &reused.call_graph.site_targets {
        if site.file.0 == 0 && !targets.is_empty() {
            let lib_targets = targets.iter().filter(|t| t.file.0 == 1).count();
            if lib_targets > 0 {
                println!("  index.js line {} -> {} library callee(s)", site.line, lib_targets);
            }
        }
    }
    println!();
    println!("caveat: reuse requires the vendored library file to be byte-identical");
    println!("(hint locations are file/line/column; see DESIGN.md).");
    Ok(())
}
