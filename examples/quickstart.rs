//! Quickstart: analyze a small project with and without approximate
//! interpretation and see the recovered call edges.
//!
//! Run with `cargo run --example quickstart`.

use aji::{run_benchmark, PipelineOptions};
use aji_ast::Project;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A miniature library that installs its API with dynamic property
    // writes — the pattern that defeats purely static call-graph
    // analyses.
    let mut project = Project::new("quickstart");
    project.add_file(
        "index.js",
        r#"var api = {};
['start', 'stop', 'status'].forEach(function(command) {
  api[command] = function handler(arg) {
    return command + '(' + arg + ')';
  };
});
api.start('engine');
api.status('engine');
"#,
    );

    let report = run_benchmark(&project, &PipelineOptions::default())?;

    println!("project: {}", report.name);
    println!();
    println!("                        baseline   with hints");
    println!(
        "call edges:             {:>8}   {:>10}",
        report.baseline.call_edges, report.extended.call_edges
    );
    println!(
        "reachable functions:    {:>8}   {:>10}",
        report.baseline.reachable_functions, report.extended.reachable_functions
    );
    println!(
        "resolved call sites:    {:>7.1}%   {:>9.1}%",
        report.baseline.resolved_pct(),
        report.extended.resolved_pct()
    );
    println!();
    println!(
        "approximate interpretation produced {} hints in {:.3}s",
        report.hint_count, report.approx_seconds
    );
    println!();
    println!("recovered call edges (file:line:col -> file:line:col):");
    for (site, callee) in report.extended_call_graph.edges.iter() {
        let new = !report.baseline_call_graph.edges.contains(&(*site, *callee));
        let marker = if new { " [recovered by hints]" } else { "" };
        println!(
            "  {}:{}:{} -> {}:{}:{}{}",
            site.file.0, site.line, site.col, callee.file.0, callee.line, callee.col, marker
        );
    }
    Ok(())
}
